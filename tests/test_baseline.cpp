#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baseline/generic_csr.hpp"
#include "baseline/generic_ewise_add.hpp"
#include "baseline/generic_spgemm.hpp"
#include "helpers.hpp"
#include "ops/ewise_add.hpp"
#include "ops/spgemm.hpp"

namespace spbla::baseline {
namespace {

using testing::ctx;
using testing::random_csr;

TEST(GenericCsr, FromBooleanLiftsOnes) {
    const auto b = random_csr(10, 10, 0.2, 1);
    const auto g = GenericCsr::from_boolean(b);
    EXPECT_EQ(g.nnz(), b.nnz());
    for (const auto v : g.vals()) EXPECT_EQ(v, 1.0f);
    EXPECT_EQ(g.pattern(), b);
}

TEST(GenericCsr, DeviceBytesIncludeValueArray) {
    const auto b = random_csr(10, 10, 0.2, 2);
    const auto g = GenericCsr::from_boolean(b);
    EXPECT_EQ(g.device_bytes(), b.device_bytes() + b.nnz() * sizeof(float));
}

TEST(GenericSpGemm, HashPatternMatchesBooleanKernel) {
    const auto a = random_csr(40, 40, 0.1, 3);
    const auto b = random_csr(40, 40, 0.1, 4);
    const auto generic =
        multiply_hash(ctx(), GenericCsr::from_boolean(a), GenericCsr::from_boolean(b));
    EXPECT_EQ(generic.pattern(), ops::multiply(ctx(), a, b));
}

TEST(GenericSpGemm, EscPatternMatchesBooleanKernel) {
    const auto a = random_csr(40, 40, 0.1, 5);
    const auto b = random_csr(40, 40, 0.1, 6);
    const auto generic =
        multiply_esc(ctx(), GenericCsr::from_boolean(a), GenericCsr::from_boolean(b));
    EXPECT_EQ(generic.pattern(), ops::multiply(ctx(), a, b));
}

TEST(GenericSpGemm, ValuesCountWitnesses) {
    // With all-ones inputs, C(i,j) equals the number of distinct middle
    // vertices — the arithmetic the Boolean kernel gets to skip.
    const auto a = CsrMatrix::from_coords(2, 3, {{0, 0}, {0, 1}, {0, 2}});
    const auto b = CsrMatrix::from_coords(3, 2, {{0, 1}, {1, 1}, {2, 1}});
    const auto c =
        multiply_hash(ctx(), GenericCsr::from_boolean(a), GenericCsr::from_boolean(b));
    ASSERT_EQ(c.nnz(), 1u);
    EXPECT_FLOAT_EQ(c.vals()[0], 3.0f);
}

TEST(GenericSpGemm, HashAndEscAgreeOnValues) {
    const auto a = random_csr(30, 30, 0.15, 7);
    const auto b = random_csr(30, 30, 0.15, 8);
    const auto ga = GenericCsr::from_boolean(a);
    const auto gb = GenericCsr::from_boolean(b);
    const auto h = multiply_hash(ctx(), ga, gb);
    const auto e = multiply_esc(ctx(), ga, gb);
    ASSERT_EQ(h.pattern(), e.pattern());
    for (std::size_t k = 0; k < h.nnz(); ++k) {
        EXPECT_FLOAT_EQ(h.vals()[k], e.vals()[k]);
    }
}

TEST(GenericSpGemm, ShapeMismatchThrows) {
    const GenericCsr a{3, 4}, b{5, 5};
    EXPECT_THROW((void)multiply_hash(ctx(), a, b), Error);
    EXPECT_THROW((void)multiply_esc(ctx(), a, b), Error);
}

TEST(GenericEwiseAdd, PatternMatchesBooleanKernel) {
    const auto a = random_csr(50, 50, 0.1, 9);
    const auto b = random_csr(50, 50, 0.1, 10);
    const auto g =
        ewise_add(ctx(), GenericCsr::from_boolean(a), GenericCsr::from_boolean(b));
    EXPECT_EQ(g.pattern(), ops::ewise_add(ctx(), a, b));
}

TEST(GenericEwiseAdd, CoincidentValuesSum) {
    const auto a = CsrMatrix::from_coords(1, 2, {{0, 0}});
    const auto g =
        ewise_add(ctx(), GenericCsr::from_boolean(a), GenericCsr::from_boolean(a));
    ASSERT_EQ(g.nnz(), 1u);
    EXPECT_FLOAT_EQ(g.vals()[0], 2.0f);
}

TEST(GenericEwiseAdd, ShapeMismatchThrows) {
    const GenericCsr a{3, 4}, b{4, 4};
    EXPECT_THROW((void)ewise_add(ctx(), a, b), Error);
}

TEST(Baseline, BooleanFormatIsNeverLarger) {
    // The memory claim in its simplest form: for any matrix, the Boolean
    // CSR footprint is bounded by the generic footprint.
    for (const auto seed : {11, 12, 13}) {
        const auto b = random_csr(64, 64, 0.1, seed);
        EXPECT_LE(b.device_bytes(), GenericCsr::from_boolean(b).device_bytes());
    }
}

class GenericSweep : public ::testing::TestWithParam<double> {};

TEST_P(GenericSweep, AllThreeMultipliesAgreeAcrossDensities) {
    const double density = GetParam();
    const auto a = random_csr(48, 48, density, 21);
    const auto b = random_csr(48, 48, density, 22);
    const auto boolean = ops::multiply(ctx(), a, b);
    const auto ga = GenericCsr::from_boolean(a);
    const auto gb = GenericCsr::from_boolean(b);
    EXPECT_EQ(multiply_hash(ctx(), ga, gb).pattern(), boolean);
    EXPECT_EQ(multiply_esc(ctx(), ga, gb).pattern(), boolean);
}

INSTANTIATE_TEST_SUITE_P(Densities, GenericSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.3, 0.6));

}  // namespace
}  // namespace spbla::baseline
