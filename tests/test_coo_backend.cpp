/// \file test_coo_backend.cpp
/// \brief The clBool-style COO backend must agree with the cuBool-style CSR
/// backend on every operation of the paper's list.
#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "ops/ops.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::random_csr;

// Op suites run on the shared contexts; CheckedContext asserts the
// MemoryTracker leak report is clean after every test.
using CooMultiply = ::spbla::testing::CheckedContext;
using CooTranspose = ::spbla::testing::CheckedContext;
using CooSubmatrix = ::spbla::testing::CheckedContext;
using CooReduce = ::spbla::testing::CheckedContext;

TEST_F(CooMultiply, AgreesWithCsrKernel) {
    for (const auto seed : {1, 2, 3}) {
        const auto a = random_csr(40, 50, 0.1, seed);
        const auto b = random_csr(50, 30, 0.1, seed + 10);
        const auto coo_result = ops::multiply(ctx(), to_coo(a), to_coo(b));
        coo_result.validate();
        EXPECT_EQ(to_csr(coo_result), ops::multiply(ctx(), a, b)) << seed;
    }
}

TEST_F(CooMultiply, EmptyAndShapeChecks) {
    const CooMatrix a{3, 4}, b{4, 5};
    const auto c = ops::multiply(ctx(), a, b);
    EXPECT_EQ(c.nrows(), 3u);
    EXPECT_EQ(c.ncols(), 5u);
    EXPECT_EQ(c.nnz(), 0u);
    const CooMatrix bad{5, 5};
    EXPECT_THROW((void)ops::multiply(ctx(), a, bad), Error);
}

TEST_F(CooMultiply, DeduplicatesPartialProducts) {
    // Two middle vertices produce the same output cell exactly once.
    const auto a = CooMatrix::from_coords(2, 3, {{0, 0}, {0, 1}});
    const auto b = CooMatrix::from_coords(3, 2, {{0, 1}, {1, 1}});
    const auto c = ops::multiply(ctx(), a, b);
    EXPECT_EQ(c.nnz(), 1u);
    EXPECT_TRUE(c.get(0, 1));
}

TEST_F(CooMultiply, ExpansionBufferIsTracked) {
    backend::Context local{backend::Policy::Sequential};
    const auto a = to_coo(random_csr(20, 20, 0.3, 5));
    (void)ops::multiply(local, a, a);
    EXPECT_EQ(local.tracker().current_bytes(), 0u);
    EXPECT_GT(local.tracker().peak_bytes(), 0u);
}

TEST_F(CooTranspose, AgreesWithCsrKernel) {
    const auto m = random_csr(25, 35, 0.15, 6);
    const auto t = ops::transpose(ctx(), to_coo(m));
    t.validate();
    EXPECT_EQ(to_csr(t), ops::transpose(ctx(), m));
}

TEST_F(CooTranspose, Involution) {
    const auto m = to_coo(random_csr(20, 20, 0.2, 7));
    EXPECT_EQ(ops::transpose(ctx(), ops::transpose(ctx(), m)), m);
}

TEST_F(CooSubmatrix, AgreesWithCsrKernel) {
    const auto m = random_csr(30, 30, 0.2, 8);
    const auto s = ops::submatrix(ctx(), to_coo(m), 5, 7, 12, 9);
    s.validate();
    EXPECT_EQ(to_csr(s), ops::submatrix(ctx(), m, 5, 7, 12, 9));
}

TEST_F(CooSubmatrix, WindowChecks) {
    const auto m = to_coo(random_csr(10, 10, 0.2, 9));
    EXPECT_THROW((void)ops::submatrix(ctx(), m, 5, 5, 6, 5), Error);
    EXPECT_EQ(ops::submatrix(ctx(), m, 0, 0, 10, 10), m);
}

TEST_F(CooReduce, AgreesWithCsrKernel) {
    const auto m = random_csr(40, 40, 0.08, 10);
    EXPECT_EQ(ops::reduce_to_column(ctx(), to_coo(m)),
              ops::reduce_to_column(ctx(), m));
}

TEST_F(CooReduce, EmptyMatrix) {
    EXPECT_EQ(ops::reduce_to_column(ctx(), CooMatrix{5, 5}).nnz(), 0u);
}

/// The backend-parity property, swept across shapes and densities: CSR and
/// COO pipelines compute identical algebra.
struct ParityCase {
    Index m, k, n;
    double density;
    std::uint64_t seed;
};

class CooParitySweep : public ::spbla::testing::CheckedContextWithParam<ParityCase> {};

TEST_P(CooParitySweep, FullExpressionParity) {
    const auto p = GetParam();
    const auto a = random_csr(p.m, p.k, p.density, p.seed);
    const auto b = random_csr(p.k, p.n, p.density, p.seed + 1);
    const auto c = random_csr(p.m, p.n, p.density, p.seed + 2);

    // (C | A*B)^T computed entirely in each backend.
    const auto csr_expr = ops::transpose(
        ctx(), ops::ewise_add(ctx(), c, ops::multiply(ctx(), a, b)));
    const auto coo_expr = ops::transpose(
        ctx(),
        ops::ewise_add(ctx(), to_coo(c), ops::multiply(ctx(), to_coo(a), to_coo(b))));
    EXPECT_EQ(to_csr(coo_expr), csr_expr);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CooParitySweep,
    ::testing::Values(ParityCase{1, 1, 1, 1.0, 1}, ParityCase{16, 16, 16, 0.2, 2},
                      ParityCase{50, 10, 50, 0.1, 3}, ParityCase{10, 50, 10, 0.3, 4},
                      ParityCase{64, 64, 64, 0.05, 5},
                      ParityCase{33, 77, 21, 0.15, 6}));

}  // namespace
}  // namespace spbla
