#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/types.hpp"
#include "rpq/regex.hpp"

namespace spbla::rpq {
namespace {

std::vector<std::string> word(std::initializer_list<const char*> tokens) {
    std::vector<std::string> out;
    for (const auto* t : tokens) out.emplace_back(t);
    return out;
}

TEST(RegexParse, SingleSymbol) {
    const auto r = parse("hello_r");
    EXPECT_EQ(r->kind, Regex::Kind::Symbol);
    EXPECT_EQ(r->symbol, "hello_r");
}

TEST(RegexParse, EpsKeyword) {
    EXPECT_EQ(parse("eps")->kind, Regex::Kind::Epsilon);
}

TEST(RegexParse, ConcatAltPrecedence) {
    // a b | c parses as (a.b) | c.
    const auto r = parse("a b | c");
    ASSERT_EQ(r->kind, Regex::Kind::Alt);
    EXPECT_EQ(r->left->kind, Regex::Kind::Concat);
    EXPECT_EQ(r->right->symbol, "c");
}

TEST(RegexParse, ExplicitDotConcatenation) {
    const auto r = parse("a . b");
    ASSERT_EQ(r->kind, Regex::Kind::Concat);
    EXPECT_EQ(r->left->symbol, "a");
    EXPECT_EQ(r->right->symbol, "b");
}

TEST(RegexParse, PostfixOperators) {
    EXPECT_EQ(parse("a*")->kind, Regex::Kind::Star);
    EXPECT_EQ(parse("a+")->kind, Regex::Kind::Plus);
    EXPECT_EQ(parse("a?")->kind, Regex::Kind::Optional);
    // Stacked postfix binds innermost-first.
    const auto r = parse("a*?");
    ASSERT_EQ(r->kind, Regex::Kind::Optional);
    EXPECT_EQ(r->left->kind, Regex::Kind::Star);
}

TEST(RegexParse, ParenthesesGroup) {
    const auto r = parse("(a | b)*");
    ASSERT_EQ(r->kind, Regex::Kind::Star);
    EXPECT_EQ(r->left->kind, Regex::Kind::Alt);
}

TEST(RegexParse, BadInputsThrow) {
    EXPECT_THROW((void)parse(""), Error);
    EXPECT_THROW((void)parse("("), Error);
    EXPECT_THROW((void)parse("a )"), Error);
    EXPECT_THROW((void)parse("| a"), Error);
    EXPECT_THROW((void)parse("a $ b"), Error);
}

TEST(RegexParse, RoundTripThroughToString) {
    for (const auto* text :
         {"a", "a b", "a | b", "(a | b)*", "a b* c?", "(a (b c)*)+ | (d f)+"}) {
        const auto r = parse(text);
        const auto again = parse(to_string(*r));
        // Compare by matching behaviour on a few words.
        const std::vector<std::vector<std::string>> probes = {
            {}, word({"a"}), word({"a", "b"}), word({"b", "c"}),
            word({"a", "b", "c"}), word({"d", "f"}), word({"a", "b", "c", "d"})};
        for (const auto& w : probes) {
            EXPECT_EQ(matches(*r, w), matches(*again, w))
                << text << " on word size " << w.size();
        }
    }
}

TEST(RegexSymbols, CollectsDistinctSorted) {
    const auto r = parse("b a | a c* b");
    EXPECT_EQ(symbols_of(*r), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RegexNullable, Cases) {
    EXPECT_TRUE(nullable(*parse("eps")));
    EXPECT_TRUE(nullable(*parse("a*")));
    EXPECT_TRUE(nullable(*parse("a?")));
    EXPECT_FALSE(nullable(*parse("a")));
    EXPECT_FALSE(nullable(*parse("a+")));
    EXPECT_TRUE(nullable(*parse("(a*)(b*)")));
    EXPECT_FALSE(nullable(*parse("a* b")));
    EXPECT_TRUE(nullable(*parse("a | b*")));
    EXPECT_TRUE(nullable(*parse("(a+)?")));
}

TEST(RegexMatch, Symbol) {
    const auto r = parse("a");
    EXPECT_TRUE(matches(*r, word({"a"})));
    EXPECT_FALSE(matches(*r, {}));
    EXPECT_FALSE(matches(*r, word({"b"})));
    EXPECT_FALSE(matches(*r, word({"a", "a"})));
}

TEST(RegexMatch, Concat) {
    const auto r = parse("a b");
    EXPECT_TRUE(matches(*r, word({"a", "b"})));
    EXPECT_FALSE(matches(*r, word({"b", "a"})));
    EXPECT_FALSE(matches(*r, word({"a"})));
}

TEST(RegexMatch, StarAcceptsRepetitions) {
    const auto r = parse("a*");
    EXPECT_TRUE(matches(*r, {}));
    EXPECT_TRUE(matches(*r, word({"a"})));
    EXPECT_TRUE(matches(*r, word({"a", "a", "a", "a"})));
    EXPECT_FALSE(matches(*r, word({"a", "b"})));
}

TEST(RegexMatch, PlusNeedsOne) {
    const auto r = parse("(a b)+");
    EXPECT_FALSE(matches(*r, {}));
    EXPECT_TRUE(matches(*r, word({"a", "b"})));
    EXPECT_TRUE(matches(*r, word({"a", "b", "a", "b"})));
    EXPECT_FALSE(matches(*r, word({"a", "b", "a"})));
}

TEST(RegexMatch, ComplexPaperTemplate) {
    // Q14: (a b (c d)*)+ (e | f)*
    const auto r = parse("(a b (c d)*)+ (e | f)*");
    EXPECT_TRUE(matches(*r, word({"a", "b"})));
    EXPECT_TRUE(matches(*r, word({"a", "b", "c", "d", "e", "f"})));
    EXPECT_TRUE(matches(*r, word({"a", "b", "a", "b", "c", "d"})));
    EXPECT_FALSE(matches(*r, word({"c", "d"})));
    EXPECT_FALSE(matches(*r, word({"a", "b", "c"})));
}

TEST(RegexMatch, NestedStarsTerminate) {
    // Nullable inner loop must not hang the matcher.
    const auto r = parse("(a*)*");
    EXPECT_TRUE(matches(*r, {}));
    EXPECT_TRUE(matches(*r, word({"a", "a"})));
    EXPECT_FALSE(matches(*r, word({"b"})));
}

TEST(RegexBuilders, NaryHelpers) {
    const std::vector<RegexPtr> parts{sym("x"), sym("y"), sym("z")};
    EXPECT_TRUE(matches(*cat_all(parts), word({"x", "y", "z"})));
    EXPECT_TRUE(matches(*alt_all(parts), word({"y"})));
    EXPECT_FALSE(matches(*alt_all(parts), word({"x", "y"})));
}

TEST(RegexBuilders, EmptyMatchesNothing) {
    const auto r = empty();
    EXPECT_FALSE(matches(*r, {}));
    EXPECT_FALSE(matches(*r, word({"a"})));
}

}  // namespace
}  // namespace spbla::rpq
