#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "data/lubm.hpp"
#include "data/worstcase.hpp"
#include "helpers.hpp"
#include "rpq/engine.hpp"
#include "rpq/query_templates.hpp"
#include "util/rng.hpp"

namespace spbla::rpq {
namespace {

using testing::ctx;

data::LabeledGraph random_labeled_graph(Index n, const std::vector<std::string>& labels,
                                        double density, std::uint64_t seed) {
    util::Rng rng{seed};
    std::vector<data::LabeledEdge> edges;
    const auto target = static_cast<std::size_t>(density * n * n * labels.size());
    for (std::size_t k = 0; k < target; ++k) {
        edges.push_back({static_cast<Index>(rng.below(n)),
                         labels[rng.below(labels.size())],
                         static_cast<Index>(rng.below(n))});
    }
    return data::LabeledGraph::from_edges(n, edges);
}

TEST(RpqEngine, SingleEdgeQuery) {
    const auto g = data::LabeledGraph::from_edges(3, {{0, "a", 1}, {1, "b", 2}});
    const auto answers = evaluate(ctx(), g, compile_query("a"));
    EXPECT_EQ(answers.to_coords(), (std::vector<Coord>{{0, 1}}));
}

TEST(RpqEngine, ConcatWalksTwoEdges) {
    const auto g = data::LabeledGraph::from_edges(3, {{0, "a", 1}, {1, "b", 2}});
    const auto answers = evaluate(ctx(), g, compile_query("a b"));
    EXPECT_EQ(answers.to_coords(), (std::vector<Coord>{{0, 2}}));
}

TEST(RpqEngine, StarIncludesEmptyPath) {
    const auto g = data::make_path(4);
    const auto answers = evaluate(ctx(), g, compile_query("a*"));
    // a* over a path: all pairs i <= j.
    EXPECT_EQ(answers.nnz(), 10u);
    for (Index i = 0; i < 4; ++i) EXPECT_TRUE(answers.get(i, i));
}

TEST(RpqEngine, PlusExcludesEmptyPath) {
    const auto g = data::make_path(4);
    const auto answers = evaluate(ctx(), g, compile_query("a+"));
    EXPECT_EQ(answers.nnz(), 6u);
    for (Index i = 0; i < 4; ++i) EXPECT_FALSE(answers.get(i, i));
}

TEST(RpqEngine, CycleWithStar) {
    const auto g = data::make_cycle(5);
    const auto answers = evaluate(ctx(), g, compile_query("a*"));
    EXPECT_EQ(answers.nnz(), 25u);  // everything reaches everything
}

TEST(RpqEngine, MissingLabelYieldsNoAnswers) {
    const auto g = data::make_path(4);
    const auto answers = evaluate(ctx(), g, compile_query("zz"));
    EXPECT_EQ(answers.nnz(), 0u);
}

TEST(RpqEngine, AlternationMixesLabels) {
    const auto g = data::LabeledGraph::from_edges(
        4, {{0, "a", 1}, {1, "b", 2}, {2, "a", 3}});
    const auto answers = evaluate(ctx(), g, compile_query("(a | b)+"));
    // Chain 0-1-2-3 is fully connected forward.
    EXPECT_EQ(answers.nnz(), 6u);
}

TEST(RpqEngine, IndexExposesStats) {
    const auto g = data::make_path(16);
    const auto index = build_index(ctx(), g, compile_query("a*"));
    EXPECT_GT(index.product_nnz, 0u);
    EXPECT_GT(index.closure_rounds, 0u);
    EXPECT_GT(index.closure.nnz(), index.product_nnz);
}

TEST(RpqEngine, ClosureStrategiesAgree) {
    const auto g = random_labeled_graph(20, {"a", "b"}, 0.01, 5);
    const auto q = compile_query("a (a | b)*");
    const auto sq = build_index(ctx(), g, q, algorithms::ClosureStrategy::Squaring);
    const auto lin = build_index(ctx(), g, q, algorithms::ClosureStrategy::Linear);
    EXPECT_EQ(sq.reachable, lin.reachable);
}

TEST(RpqEngine, PathExtractionYieldsAcceptedWords) {
    const auto g = data::make_lubm(2);
    const auto labels = g.labels_by_frequency();
    const auto q = compile_query(labels[0] + " " + labels[1] + "*");
    const auto answers = evaluate(ctx(), g, q);
    ASSERT_GT(answers.nnz(), 0u);
    std::size_t checked = 0;
    for (const auto& pair : answers.to_coords()) {
        std::vector<std::string> word;
        ASSERT_TRUE(extract_path(g, q, pair.row, pair.col, word));
        EXPECT_TRUE(q.accepts(word)) << "witness not in language";
        if (++checked == 25) break;
    }
}

TEST(RpqEngine, ExtractPathFailsForNonAnswer) {
    const auto g = data::make_path(3);
    const auto q = compile_query("a");
    std::vector<std::string> word;
    EXPECT_FALSE(extract_path(g, q, 0, 2, word));  // needs two edges
}

TEST(RpqEngine, ExtractEmptyPathForNullableQuery) {
    const auto g = data::make_path(3);
    const auto q = compile_query("a*");
    std::vector<std::string> word{"sentinel"};
    ASSERT_TRUE(extract_path(g, q, 1, 1, word));
    EXPECT_TRUE(word.empty());
}

TEST(RpqEngine, SingleSourceMatchesFullIndexRow) {
    const auto g = data::make_lubm(2);
    const auto labels = g.labels_by_frequency();
    for (const auto* text : {"a*", "a b*", "(a | b)+"}) {
        std::string instantiated{text};
        // crude placeholder substitution: a -> labels[0], b -> labels[1]
        std::string expanded;
        for (const char c : instantiated) {
            if (c == 'a')
                expanded += labels[0];
            else if (c == 'b')
                expanded += labels[1];
            else
                expanded += c;
        }
        const auto q = compile_query(expanded);
        const auto full = evaluate(ctx(), g, q);
        for (const Index source : {Index{0}, Index{40}, Index{100}}) {
            const auto from = evaluate_from(ctx(), g, q, source);
            for (Index v = 0; v < g.num_vertices(); ++v) {
                ASSERT_EQ(from.get(v), full.get(source, v))
                    << expanded << " source " << source << " target " << v;
            }
        }
    }
}

TEST(RpqEngine, SingleSourceNullableIncludesSource) {
    const auto g = data::make_path(4);
    const auto from = evaluate_from(ctx(), g, compile_query("a*"), 2);
    EXPECT_TRUE(from.get(2));
    EXPECT_TRUE(from.get(3));
    EXPECT_FALSE(from.get(0));
}

TEST(RpqEngine, SingleSourceOutOfRangeThrows) {
    const auto g = data::make_path(4);
    EXPECT_THROW((void)evaluate_from(ctx(), g, compile_query("a"), 4), Error);
}

/// Core property: the tensor-product engine agrees with the direct
/// product-automaton BFS on random graphs for every Table II template.
class EngineAgreement : public ::testing::TestWithParam<QueryTemplate> {};

TEST_P(EngineAgreement, MatchesReferenceBfs) {
    const auto& tpl = GetParam();
    const std::vector<std::string> alphabet{"a", "b", "c", "d", "e", "f"};
    const auto q = minimize(determinize(glushkov(*tpl.instantiate(alphabet))));
    for (const std::uint64_t seed : {1u, 2u}) {
        const auto g = random_labeled_graph(14, alphabet, 0.004, seed * 31 + 7);
        EXPECT_EQ(evaluate(ctx(), g, q), evaluate_reference(g, q))
            << tpl.name << " seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Table2, EngineAgreement,
                         ::testing::ValuesIn(table2_templates()),
                         [](const ::testing::TestParamInfo<QueryTemplate>& info) {
                             std::string name = info.param.name;
                             for (auto& c : name) {
                                 if (c == '^') c = '_';
                             }
                             return name;
                         });

}  // namespace
}  // namespace spbla::rpq
