/// \file test_skewed_workloads.cpp
/// \brief Correctness of the bin-scheduled SpGEMM pipeline on skewed inputs.
///
/// The bin scheduler, ticket parallel-for, and symbolic-column cache were
/// motivated by power-law matrices (R-MAT, Zipf) whose hub rows break static
/// schedules. These tests pin the Boolean kernels against the generic
/// (value-carrying) baseline on exactly those inputs, across the sequential
/// and parallel policies and every scheduler/caching configuration, plus the
/// structural edge cases (empty bins, a single heavy row, all-dense rows).
#include <gtest/gtest.h>

#include <vector>

#include "baseline/generic_ewise_add.hpp"
#include "baseline/generic_spgemm.hpp"
#include "data/rmat.hpp"
#include "helpers.hpp"
#include "ops/ewise_add.hpp"
#include "ops/spgemm.hpp"
#include "ops/transpose.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::seq_ctx;

// Op suites run on the shared contexts; CheckedContext asserts the
// MemoryTracker leak report is clean after every test.
using SkewedEdgeCases = ::spbla::testing::CheckedContext;

/// Generic-baseline reference: lift to floats, multiply, drop values.
CsrMatrix generic_multiply(const CsrMatrix& a, const CsrMatrix& b) {
    const auto ga = baseline::GenericCsr::from_boolean(a);
    const auto gb = baseline::GenericCsr::from_boolean(b);
    return baseline::multiply_hash(testing::ctx(), ga, gb).pattern();
}

CsrMatrix generic_add(const CsrMatrix& a, const CsrMatrix& b) {
    const auto ga = baseline::GenericCsr::from_boolean(a);
    const auto gb = baseline::GenericCsr::from_boolean(b);
    return baseline::ewise_add(testing::ctx(), ga, gb).pattern();
}

/// Every scheduler/caching combination the options expose, including the
/// pre-PR-equivalent two-pass static-chunk configuration.
std::vector<ops::SpGemmOptions> all_schedules() {
    std::vector<ops::SpGemmOptions> configs;
    for (const bool bins : {true, false}) {
        for (const bool tickets : {true, false}) {
            for (const std::size_t budget :
                 {std::size_t{0}, std::size_t{1} << 12, std::size_t{64} << 20}) {
                ops::SpGemmOptions opts;
                opts.use_bin_scheduler = bins;
                opts.use_ticket_scheduler = tickets;
                opts.symbolic_cache_budget = budget;
                configs.push_back(opts);
            }
        }
    }
    return configs;
}

class SkewedSpGemm : public ::spbla::testing::CheckedContextWithParam<const char*> {
protected:
    CsrMatrix matrix() const {
        const std::string name = GetParam();
        if (name == "rmat") return data::make_rmat(8, 8, 91).csr();
        if (name == "zipf-mild") return data::make_zipf(300, 300, 10, 0.8, 92).csr();
        return data::make_zipf(256, 256, 16, 1.4, 93).csr();  // "zipf-heavy": hub rows
    }
};

TEST_P(SkewedSpGemm, AllConfigurationsMatchGenericBaseline) {
    const auto a = matrix();
    const auto expected = generic_multiply(a, a);
    for (const auto& opts : all_schedules()) {
        const auto par = ops::multiply(ctx(), a, a, opts);
        par.validate();
        EXPECT_EQ(par, expected)
            << "bins=" << opts.use_bin_scheduler
            << " tickets=" << opts.use_ticket_scheduler
            << " budget=" << opts.symbolic_cache_budget << " (parallel)";
        const auto seq = ops::multiply(seq_ctx(), a, a, opts);
        EXPECT_EQ(seq, expected)
            << "bins=" << opts.use_bin_scheduler
            << " tickets=" << opts.use_ticket_scheduler
            << " budget=" << opts.symbolic_cache_budget << " (sequential)";
    }
}

TEST_P(SkewedSpGemm, EwiseAddMatchesGenericBaseline) {
    const auto a = matrix();
    const auto at = ops::transpose(ctx(), a);
    const auto expected = generic_add(a, at);
    EXPECT_EQ(ops::ewise_add(ctx(), a, at), expected);
    EXPECT_EQ(ops::ewise_add(seq_ctx(), a, at), expected);
}

INSTANTIATE_TEST_SUITE_P(Inputs, SkewedSpGemm,
                         ::testing::Values("rmat", "zipf-mild", "zipf-heavy"));

TEST_F(SkewedEdgeCases, EmptyBinsEverywhere) {
    // All-empty operand: every bin is empty, no launch does any work.
    const CsrMatrix a{100, 100};
    const auto c = ops::multiply(ctx(), a, a);
    EXPECT_EQ(c.nnz(), 0u);
    EXPECT_EQ(c.nrows(), 100u);
}

TEST_F(SkewedEdgeCases, SingleHeavyRowAmongEmptyOnes) {
    // One full row (dense bin), everything else empty — the straggler the
    // heavy-first schedule exists for.
    std::vector<Coord> coords;
    for (Index j = 0; j < 512; ++j) coords.push_back({7, j});
    const auto a = CsrMatrix::from_coords(512, 512, coords);
    const CsrMatrix b = data::make_zipf(512, 512, 4, 1.0, 94).csr();
    const auto expected = generic_multiply(a, b);
    for (const auto& opts : all_schedules()) {
        EXPECT_EQ(ops::multiply(ctx(), a, b, opts), expected);
    }
    EXPECT_EQ(ops::multiply(seq_ctx(), a, b), expected);
}

TEST_F(SkewedEdgeCases, AllDenseRows) {
    // Near-full operands: every non-empty row lands in the dense bin.
    const CsrMatrix a = data::make_uniform(300, 300, 0.6, 95).csr();
    const CsrMatrix b = data::make_uniform(300, 300, 0.6, 96).csr();
    const auto expected = generic_multiply(a, b);
    for (const auto& opts : all_schedules()) {
        EXPECT_EQ(ops::multiply(ctx(), a, b, opts), expected);
    }
}

TEST_F(SkewedEdgeCases, AllTinyRows) {
    // Ultra-sparse operands: every non-empty row lands in the tiny bin.
    const auto a = testing::random_csr(400, 400, 0.004, 97);
    const auto b = testing::random_csr(400, 400, 0.004, 98);
    const auto expected = generic_multiply(a, b);
    for (const auto& opts : all_schedules()) {
        EXPECT_EQ(ops::multiply(ctx(), a, b, opts), expected);
    }
}

TEST_F(SkewedEdgeCases, HashLargeBinBoundary) {
    // Rows straddling the hash-small/hash-large threshold agree either way.
    const CsrMatrix a = data::make_zipf(512, 512, 12, 1.0, 99).csr();
    ops::SpGemmOptions tiny_split;
    tiny_split.hash_large_threshold = 64;  // push most hash rows into "large"
    ops::SpGemmOptions huge_split;
    huge_split.hash_large_threshold = 0xFFFFFFFFu;  // nothing is "large"
    const auto c1 = ops::multiply(ctx(), a, a, tiny_split);
    const auto c2 = ops::multiply(ctx(), a, a, huge_split);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(c1, generic_multiply(a, a));
}

TEST_F(SkewedEdgeCases, LegacyAccumulatorResetMatches) {
    // The benchmark-only pre-PR accumulator mode must stay correct so the
    // perf trajectory compares two right answers.
    const CsrMatrix a = data::make_zipf(300, 300, 14, 1.2, 103).csr();
    const auto expected = generic_multiply(a, a);
    ops::SpGemmOptions legacy;
    legacy.legacy_accumulator_reset = true;
    legacy.use_bin_scheduler = false;
    legacy.use_ticket_scheduler = false;
    legacy.symbolic_cache_budget = 0;
    EXPECT_EQ(ops::multiply(ctx(), a, a, legacy), expected);
    EXPECT_EQ(ops::multiply(seq_ctx(), a, a, legacy), expected);
}

TEST_F(SkewedEdgeCases, TightCacheBudgetFallsBackPerRow) {
    // A budget big enough for some rows but not all exercises the mixed
    // cached/recomputed numeric path.
    const CsrMatrix a = data::make_zipf(256, 256, 16, 1.2, 100).csr();
    const auto expected = generic_multiply(a, a);
    for (const std::size_t budget : {std::size_t{64}, std::size_t{1} << 10,
                                     std::size_t{1} << 16}) {
        ops::SpGemmOptions opts;
        opts.symbolic_cache_budget = budget;
        EXPECT_EQ(ops::multiply(ctx(), a, a, opts), expected) << "budget=" << budget;
    }
}

TEST_F(SkewedEdgeCases, CacheLeavesNoTrackedMemoryBehind) {
    backend::Context local{backend::Policy::Parallel, 2};
    const CsrMatrix a = data::make_zipf(256, 256, 8, 1.0, 101).csr();
    (void)ops::multiply(local, a, a);  // caching on by default
    EXPECT_EQ(local.tracker().current_bytes(), 0u);
    EXPECT_GT(local.tracker().peak_bytes(), 0u);
}

TEST_F(SkewedEdgeCases, ZipfGeneratorShapeAndSkew) {
    const CsrMatrix a = data::make_zipf(1000, 1000, 8, 1.2, 102).csr();
    a.validate();
    EXPECT_EQ(a.nrows(), 1000u);
    EXPECT_EQ(a.ncols(), 1000u);
    EXPECT_GT(a.nnz(), 0u);
    // Hub property: the first row dominates a median row by a wide margin.
    EXPECT_GT(a.row_nnz(0), 20 * a.row_nnz(500) + 10);
}

}  // namespace
}  // namespace spbla
