/// \file helpers.hpp
/// \brief Shared utilities for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/context.hpp"
// The test oracles cross-check storage-engine results against the concrete
// formats directly, so this is one of the sanctioned leak sites.
#include "core/convert.hpp"
#include "core/coo.hpp"    // lint:allow(format-leak)
#include "core/csr.hpp"    // lint:allow(format-leak)
#include "core/dense.hpp"  // lint:allow(format-leak)
#include "core/spvector.hpp"
#include "storage/matrix.hpp"
#include "util/rng.hpp"

namespace spbla::testing {

/// Shared parallel context for the whole test binary.
inline backend::Context& ctx() {
    static backend::Context instance{backend::Policy::Parallel};
    return instance;
}

/// Shared sequential context (the CPU-fallback backend path).
inline backend::Context& seq_ctx() {
    static backend::Context instance{backend::Policy::Sequential};
    return instance;
}

/// Fixture asserting the MemoryTracker leak report on teardown: every op
/// test runs against the shared contexts, so any kernel that leaks device
/// scratch (or double-frees, driving the balance negative and thus huge)
/// fails the *specific test* that leaked rather than poisoning the footprint
/// numbers of whatever benchmark runs next. Op suites adopt it by deriving
/// their suite type: `using SpGemm = spbla::testing::CheckedContext;`.
class CheckedContext : public ::testing::Test {
protected:
    void SetUp() override {
        start_parallel_ = ctx().tracker().current_bytes();
        start_sequential_ = seq_ctx().tracker().current_bytes();
    }

    void TearDown() override {
        EXPECT_EQ(ctx().tracker().current_bytes(), start_parallel_)
            << "parallel context leaked device memory: "
            << ctx().tracker().leak_report();
        EXPECT_EQ(seq_ctx().tracker().current_bytes(), start_sequential_)
            << "sequential context leaked device memory: "
            << seq_ctx().tracker().leak_report();
    }

private:
    std::size_t start_parallel_{0};
    std::size_t start_sequential_{0};
};

/// Parameterised-test variant of CheckedContext (for TEST_P sweeps).
template <class Param>
class CheckedContextWithParam : public CheckedContext,
                                public ::testing::WithParamInterface<Param> {};

/// Random Boolean matrix with ~density fraction of cells set.
inline CsrMatrix random_csr(Index nrows, Index ncols, double density,
                            std::uint64_t seed) {
    util::Rng rng{seed};
    std::vector<Coord> coords;
    const auto target = static_cast<std::size_t>(
        density * static_cast<double>(nrows) * static_cast<double>(ncols));
    for (std::size_t k = 0; k < target; ++k) {
        coords.push_back({static_cast<Index>(rng.below(nrows)),
                          static_cast<Index>(rng.below(ncols))});
    }
    return CsrMatrix::from_coords(nrows, ncols, std::move(coords));
}

/// Same distribution, wrapped in the storage-engine handle (bound to the
/// shared parallel context so cached representations charge its tracker).
inline Matrix random_matrix(Index nrows, Index ncols, double density,
                            std::uint64_t seed) {
    return Matrix{random_csr(nrows, ncols, density, seed), ctx()};
}

/// Random word over an alphabet of labels.
inline std::vector<std::string> random_word(const std::vector<std::string>& alphabet,
                                            std::size_t length, util::Rng& rng) {
    std::vector<std::string> word;
    word.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
        word.push_back(alphabet[rng.below(alphabet.size())]);
    }
    return word;
}

}  // namespace spbla::testing
