#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cfpq/cyk.hpp"
#include "cfpq/paths.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "cfpq/tensor_paths.hpp"
#include "cfpq/worklist.hpp"
#include "data/kernel_alias.hpp"
#include "data/rdflike.hpp"
#include "data/worstcase.hpp"
#include "helpers.hpp"

namespace spbla::cfpq {
namespace {

using testing::ctx;

/// Walks the graph checking the label word is realised edge-by-edge... the
/// extractor guarantees derivability, but a witness must also be an actual
/// walk from u to v. For CFPQ the index only certifies derivable *pairs*,
/// so we verify both: the word is a walk and the word is in the language.
bool word_is_walk(const data::LabeledGraph& g, Index u, Index v,
                  const std::vector<std::string>& word) {
    // BFS over positions x current vertex (a word may be realised by many
    // walks; any one suffices).
    std::set<Index> current{u};
    for (const auto& label : word) {
        std::set<Index> next;
        if (!g.has_label(label)) return false;
        const auto& m = g.matrix(label);
        for (const auto w : current) {
            for (const auto t : m.row(w)) next.insert(t);
        }
        if (next.empty()) return false;
        current = std::move(next);
    }
    return current.contains(v);
}

TEST(Paths, DyckPathOnNestedChain) {
    const auto g = data::LabeledGraph::from_edges(
        5, {{0, "a", 1}, {1, "a", 2}, {2, "b", 3}, {3, "b", 4}});
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    const PathExtractor extractor{ctx(), g, index};

    const auto inner = extractor.extract(1, 3, 20, 10);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(inner[0], (std::vector<std::string>{"a", "b"}));

    const auto outer = extractor.extract(0, 4, 20, 10);
    ASSERT_EQ(outer.size(), 1u);
    EXPECT_EQ(outer[0], (std::vector<std::string>{"a", "a", "b", "b"}));
}

TEST(Paths, NonAnswerPairYieldsNothing) {
    const auto g = data::LabeledGraph::from_edges(3, {{0, "a", 1}, {1, "b", 2}});
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    const PathExtractor extractor{ctx(), g, index};
    EXPECT_TRUE(extractor.extract(1, 2, 20, 10).empty());
    EXPECT_TRUE(extractor.extract(0, 1, 20, 10).empty());
}

TEST(Paths, LengthBudgetPrunes) {
    // Cycle pair generates unboundedly long witnesses; budget caps them.
    const auto g = data::make_two_cycles(2, 3);
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    const PathExtractor extractor{ctx(), g, index};
    for (const auto& pair : index.reachable().to_coords()) {
        for (const auto& word : extractor.extract(pair.row, pair.col, 6, 50)) {
            EXPECT_LE(word.size(), 6u);
        }
    }
}

TEST(Paths, CountBudgetCaps) {
    const auto g = data::make_two_cycles(2, 3);
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    const PathExtractor extractor{ctx(), g, index};
    const auto pairs = index.reachable().to_coords();
    ASSERT_FALSE(pairs.empty());
    const auto words = extractor.extract(pairs[0].row, pairs[0].col, 30, 3);
    EXPECT_LE(words.size(), 3u);
}

TEST(Paths, EmptyWitnessForNullableStart) {
    const auto g = data::make_path(3);
    const auto grammar = Grammar::parse("S -> a S | eps\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    const PathExtractor extractor{ctx(), g, index};
    const auto words = extractor.extract(1, 1, 10, 10);
    ASSERT_FALSE(words.empty());
    EXPECT_TRUE(words[0].empty());
}

TEST(Paths, StatsAreReported) {
    const auto g = data::make_two_cycles(3, 4);
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    const PathExtractor extractor{ctx(), g, index};
    const auto pairs = index.reachable().to_coords();
    ASSERT_FALSE(pairs.empty());
    PathStats stats;
    const auto words = extractor.extract(pairs[0].row, pairs[0].col, 12, 5, &stats);
    EXPECT_EQ(stats.paths_found, words.size());
    EXPECT_GT(stats.recursion_steps, 0u);
}

// ------------------------- single-path semantics --------------------------

TEST(SinglePath, ExtractsOneWitnessPerPair) {
    const auto g = data::LabeledGraph::from_edges(
        5, {{0, "a", 1}, {1, "a", 2}, {2, "b", 3}, {3, "b", 4}});
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const SinglePathIndex index{g, grammar};
    EXPECT_EQ(index.reachable().to_coords(), (std::vector<Coord>{{0, 4}, {1, 3}}));

    std::vector<std::string> word;
    ASSERT_TRUE(index.extract_one(1, 3, word));
    EXPECT_EQ(word, (std::vector<std::string>{"a", "b"}));
    ASSERT_TRUE(index.extract_one(0, 4, word));
    EXPECT_EQ(word, (std::vector<std::string>{"a", "a", "b", "b"}));
    EXPECT_FALSE(index.extract_one(0, 3, word));
}

TEST(SinglePath, NullableStartGivesEmptyWitness) {
    const auto g = data::make_path(3);
    const auto grammar = Grammar::parse("S -> a S | eps\n");
    const SinglePathIndex index{g, grammar};
    std::vector<std::string> word{"sentinel"};
    ASSERT_TRUE(index.extract_one(1, 1, word));
    EXPECT_TRUE(word.empty());
    ASSERT_TRUE(index.extract_one(0, 2, word));
    EXPECT_EQ(word, (std::vector<std::string>{"a", "a"}));
}

TEST(SinglePath, ReachabilityMatchesWorklistAndWitnessesValidate) {
    struct Case {
        const char* name;
        data::LabeledGraph graph;
        Grammar grammar;
    };
    auto geo = data::make_geospecies(40, 6);
    geo.add_inverse_labels();
    const auto alias = data::make_alias_graph(25);
    const std::vector<Case> cases = {
        {"geo", geo, query_geo()},
        {"ma", alias, query_ma()},
    };
    for (const auto& c : cases) {
        const SinglePathIndex index{c.graph, c.grammar};
        EXPECT_EQ(index.reachable(), worklist_cfpq(c.graph, c.grammar)) << c.name;
        const auto cnf = to_cnf(c.grammar);
        std::size_t checked = 0;
        for (const auto& pair : index.reachable().to_coords()) {
            std::vector<std::string> word;
            ASSERT_TRUE(index.extract_one(pair.row, pair.col, word)) << c.name;
            EXPECT_TRUE(cyk_accepts(cnf, word)) << c.name;
            EXPECT_TRUE(word_is_walk(c.graph, pair.row, pair.col, word)) << c.name;
            if (++checked == 40) break;
        }
        EXPECT_GT(checked, 0u) << c.name;
    }
}

TEST(SinglePath, ExtractionIsLinearNotSearch) {
    // On a long chain the first-derivation tree is the only one; extraction
    // must be instant even with a large index.
    const auto g = data::LabeledGraph::from_edges(
        402, [] {
            std::vector<data::LabeledEdge> edges;
            for (Index v = 0; v < 200; ++v) edges.push_back({v, "a", v + 1});
            for (Index v = 200; v < 400; ++v) edges.push_back({v, "b", v + 1});
            return edges;
        }());
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const SinglePathIndex index{g, grammar};
    std::vector<std::string> word;
    ASSERT_TRUE(index.extract_one(0, 400, word));
    EXPECT_EQ(word.size(), 400u);
    EXPECT_EQ(word.front(), "a");
    EXPECT_EQ(word.back(), "b");
}

// --------------------------- tensor-index paths ---------------------------

TEST(TensorPaths, DyckWitnessesMatchCnfExtractor) {
    const auto g = data::LabeledGraph::from_edges(
        5, {{0, "a", 1}, {1, "a", 2}, {2, "b", 3}, {3, "b", 4}});
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto tns = tensor_cfpq(ctx(), g, grammar);
    const TensorPathExtractor extractor{ctx(), g, grammar, tns};

    const auto inner = extractor.extract(1, 3, 20, 10);
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_EQ(inner[0], (std::vector<std::string>{"a", "b"}));
    const auto outer = extractor.extract(0, 4, 20, 10);
    ASSERT_EQ(outer.size(), 1u);
    EXPECT_EQ(outer[0], (std::vector<std::string>{"a", "a", "b", "b"}));
    EXPECT_TRUE(extractor.extract(0, 3, 20, 10).empty());
}

TEST(TensorPaths, LeftRecursiveGrammarTerminates) {
    const auto g = data::make_path(4);
    const auto grammar = Grammar::parse("S -> S a | a\n");
    const auto tns = tensor_cfpq(ctx(), g, grammar);
    const TensorPathExtractor extractor{ctx(), g, grammar, tns};
    const auto words = extractor.extract(0, 3, 10, 10);
    ASSERT_EQ(words.size(), 1u);
    EXPECT_EQ(words[0], (std::vector<std::string>{"a", "a", "a"}));
}

TEST(TensorPaths, NullableStartEmitsEmptyWitness) {
    const auto g = data::make_path(3);
    const auto grammar = Grammar::parse("S -> a S | eps\n");
    const auto tns = tensor_cfpq(ctx(), g, grammar);
    const TensorPathExtractor extractor{ctx(), g, grammar, tns};
    const auto words = extractor.extract(1, 1, 10, 10);
    ASSERT_FALSE(words.empty());
    EXPECT_TRUE(words[0].empty());
    const auto forward = extractor.extract(0, 2, 10, 10);
    ASSERT_EQ(forward.size(), 1u);
    EXPECT_EQ(forward[0], (std::vector<std::string>{"a", "a"}));
}

TEST(TensorPaths, AgreesWithCnfExtractorOnPaperQueries) {
    auto geo = data::make_geospecies(30, 5);
    geo.add_inverse_labels();
    const auto grammar = query_geo();
    const auto tns = tensor_cfpq(ctx(), geo, grammar);
    const auto mtx = azimov_cfpq(ctx(), geo, grammar);
    const TensorPathExtractor tns_extractor{ctx(), geo, grammar, tns};
    const PathExtractor mtx_extractor{ctx(), geo, mtx};

    std::size_t checked = 0;
    for (const auto& pair : tns.reachable(grammar).to_coords()) {
        auto a = tns_extractor.extract(pair.row, pair.col, 8, 64);
        auto b = mtx_extractor.extract(pair.row, pair.col, 8, 64);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        // With a count cap both enumerations may truncate differently; when
        // neither hit the cap they must agree exactly.
        if (a.size() < 64 && b.size() < 64) {
            EXPECT_EQ(a, b) << "pair (" << pair.row << "," << pair.col << ")";
        }
        if (++checked == 15) break;
    }
    EXPECT_GT(checked, 0u);
}

TEST(TensorPaths, EveryWitnessIsValid) {
    const auto alias = data::make_alias_graph(20);
    const auto grammar = query_ma();
    const auto tns = tensor_cfpq(ctx(), alias, grammar);
    const TensorPathExtractor extractor{ctx(), alias, grammar, tns};
    const auto cnf = to_cnf(grammar);
    std::size_t words_checked = 0;
    for (const auto& pair : tns.reachable(grammar).to_coords()) {
        for (const auto& word : extractor.extract(pair.row, pair.col, 10, 5)) {
            EXPECT_TRUE(cyk_accepts(cnf, word));
            EXPECT_TRUE(word_is_walk(alias, pair.row, pair.col, word));
            ++words_checked;
        }
        if (words_checked > 40) break;
    }
    EXPECT_GT(words_checked, 0u);
}

/// The paper's validity property: every extracted word is (a) a real walk
/// from u to v and (b) accepted by the query grammar — across all four
/// evaluation queries on generated data.
TEST(Paths, EveryWitnessIsValidOnPaperQueries) {
    struct Case {
        const char* name;
        data::LabeledGraph graph;
        Grammar grammar;
    };
    auto ontology = data::make_ontology(40, 1.0);
    ontology.add_inverse_labels();
    auto geo = data::make_geospecies(40, 6);
    geo.add_inverse_labels();
    const auto alias = data::make_alias_graph(20);

    const std::vector<Case> cases = {
        {"g1", ontology, query_g1()},
        {"g2", ontology, query_g2()},
        {"geo", geo, query_geo()},
        {"ma", alias, query_ma()},
    };
    for (const auto& c : cases) {
        const auto index = azimov_cfpq(ctx(), c.graph, c.grammar);
        const auto cnf = to_cnf(c.grammar);
        const PathExtractor extractor{ctx(), c.graph, index};
        std::size_t pairs_checked = 0, pairs_with_witness = 0, words_checked = 0;
        for (const auto& pair : index.reachable().to_coords()) {
            const auto words = extractor.extract(pair.row, pair.col, 14, 5);
            if (!words.empty()) ++pairs_with_witness;
            for (const auto& word : words) {
                EXPECT_TRUE(cyk_accepts(cnf, word)) << c.name;
                EXPECT_TRUE(word_is_walk(c.graph, pair.row, pair.col, word)) << c.name;
                ++words_checked;
            }
            if (++pairs_checked == 20) break;
        }
        // Some pairs may only have witnesses longer than the length budget,
        // but the majority of checked pairs must yield one.
        EXPECT_GT(2 * pairs_with_witness, pairs_checked) << c.name;
        EXPECT_GT(words_checked, 0u) << c.name;
    }
}

}  // namespace
}  // namespace spbla::cfpq
