/// \file test_integration.cpp
/// \brief Cross-module scenarios exercising the whole stack the way the
/// benchmark harness and the examples do.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "algorithms/closure.hpp"
#include "cfpq/azimov.hpp"
#include "cfpq/cyk.hpp"
#include "cfpq/paths.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "cfpq/worklist.hpp"
#include "data/io.hpp"
#include "data/lubm.hpp"
#include "data/rdflike.hpp"
#include "helpers.hpp"
#include "rpq/engine.hpp"
#include "rpq/query_templates.hpp"
#include "spbla/spbla.h"

namespace spbla {
namespace {

using testing::ctx;

TEST(Integration, RpqOverLubmWithFrequentLabels) {
    // The Figure 2 pipeline end to end: generate LUBM, pick the most
    // frequent labels, instantiate a template, build the index.
    const auto g = data::make_lubm(3);
    const auto labels = g.labels_by_frequency();
    ASSERT_GE(labels.size(), 6u);
    for (const auto* name : {"Q1", "Q2", "Q4^2", "Q9^3", "Q11^2"}) {
        const auto& tpl = rpq::template_by_name(name);
        const auto q = rpq::minimize(
            rpq::determinize(rpq::glushkov(*tpl.instantiate(labels))));
        const auto index = rpq::build_index(ctx(), g, q);
        EXPECT_GT(index.reachable.nnz(), 0u) << name;
        EXPECT_EQ(index.reachable, rpq::evaluate_reference(g, q)) << name;
    }
}

TEST(Integration, CfpqPipelineOverSerializedGraph) {
    // Round-trip a generated graph through the triples format, then run all
    // three CFPQ algorithms on the loaded copy.
    auto original = data::make_ontology(50, 1.0);
    original.add_inverse_labels();
    std::stringstream ss;
    data::save_triples(ss, original);
    const auto loaded = data::load_triples(ss);

    const auto grammar = cfpq::query_g1();
    const auto ref = cfpq::worklist_cfpq(loaded, grammar);
    EXPECT_EQ(cfpq::azimov_cfpq(ctx(), loaded, grammar).reachable(), ref);
    EXPECT_EQ(cfpq::tensor_cfpq(ctx(), loaded, grammar).reachable(grammar), ref);
}

TEST(Integration, CApiReproducesOpsResults) {
    // Drive the same computation through the C API and the C++ API.
    const auto a = testing::random_csr(20, 20, 0.1, 900);
    const auto b = testing::random_csr(20, 20, 0.1, 901);
    const auto expected = ops::multiply(ctx(), a, b);

    ASSERT_EQ(spbla_Initialize(SPBLA_INIT_DEFAULT), SPBLA_STATUS_SUCCESS);
    spbla_Matrix ma = nullptr, mb = nullptr, mc = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&ma, 20, 20), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&mb, 20, 20), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&mc, 20, 20), SPBLA_STATUS_SUCCESS);

    const auto upload = [](spbla_Matrix m, const CsrMatrix& src) {
        std::vector<spbla_Index> rows, cols;
        for (const auto& c : src.to_coords()) {
            rows.push_back(c.row);
            cols.push_back(c.col);
        }
        return spbla_Matrix_Build(m, rows.data(), cols.data(),
                                  static_cast<spbla_Index>(rows.size()), SPBLA_HINT_NO);
    };
    ASSERT_EQ(upload(ma, a), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(upload(mb, b), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_MxM(mc, ma, mb, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);

    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(mc, &nvals), SPBLA_STATUS_SUCCESS);
    std::vector<spbla_Index> rows(nvals), cols(nvals);
    ASSERT_EQ(spbla_Matrix_ExtractPairs(mc, rows.data(), cols.data(), &nvals),
              SPBLA_STATUS_SUCCESS);
    std::vector<Coord> coords;
    for (spbla_Index k = 0; k < nvals; ++k) coords.push_back({rows[k], cols[k]});
    EXPECT_EQ(CsrMatrix::from_coords(20, 20, coords), expected);

    ASSERT_EQ(spbla_Matrix_Free(&ma), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&mb), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&mc), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Finalize(), SPBLA_STATUS_SUCCESS);
}

TEST(Integration, TensorIndexSupportsPathValidation) {
    // Tensor index + Azimov extractor on the same graph agree on witnesses:
    // any pair in the tensor answer has a valid extracted path.
    auto geo = data::make_geospecies(30, 5);
    geo.add_inverse_labels();
    const auto grammar = cfpq::query_geo();
    const auto tns = cfpq::tensor_cfpq(ctx(), geo, grammar);
    const auto mtx = cfpq::azimov_cfpq(ctx(), geo, grammar);
    ASSERT_EQ(tns.reachable(grammar), mtx.reachable());

    const cfpq::PathExtractor extractor{ctx(), geo, mtx};
    const auto cnf = cfpq::to_cnf(grammar);
    std::size_t checked = 0;
    for (const auto& pair : tns.reachable(grammar).to_coords()) {
        const auto words = extractor.extract(pair.row, pair.col, 10, 3);
        for (const auto& w : words) EXPECT_TRUE(cfpq::cyk_accepts(cnf, w));
        if (++checked == 10) break;
    }
}

TEST(Integration, MemoryStaysBalancedAcrossThePipeline) {
    // Everything allocated on the simulated device must be released.
    backend::Context local{backend::Policy::Parallel, 2};
    const auto g = data::make_lubm(2);
    const auto q = rpq::compile_query("memberOf subOrganizationOf*");
    (void)rpq::build_index(local, g, q);
    EXPECT_EQ(local.tracker().current_bytes(), 0u);
    EXPECT_GT(local.tracker().peak_bytes(), 0u);
    EXPECT_GT(local.tracker().alloc_count(), 0u);
}

TEST(Integration, SequentialAndParallelAgreeOnFullCfpq) {
    backend::Context seq{backend::Policy::Sequential};
    backend::Context par{backend::Policy::Parallel, 2};
    auto onto = data::make_ontology(40, 0.5);
    onto.add_inverse_labels();
    const auto grammar = cfpq::query_g2();
    EXPECT_EQ(cfpq::azimov_cfpq(seq, onto, grammar).reachable(),
              cfpq::azimov_cfpq(par, onto, grammar).reachable());
}

}  // namespace
}  // namespace spbla
