#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/bit_ops.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/zipf.hpp"

namespace spbla::util {
namespace {

// ------------------------------- bit_ops ---------------------------------

TEST(BitOps, NextPow2CoversBoundaries) {
    EXPECT_EQ(next_pow2(std::uint32_t{0}), 1u);
    EXPECT_EQ(next_pow2(std::uint32_t{1}), 1u);
    EXPECT_EQ(next_pow2(std::uint32_t{2}), 2u);
    EXPECT_EQ(next_pow2(std::uint32_t{3}), 4u);
    EXPECT_EQ(next_pow2(std::uint32_t{4}), 4u);
    EXPECT_EQ(next_pow2(std::uint32_t{5}), 8u);
    EXPECT_EQ(next_pow2(std::uint32_t{1025}), 2048u);
}

TEST(BitOps, NextPow2SixtyFourBit) {
    EXPECT_EQ(next_pow2(std::uint64_t{0x100000001ULL}), 0x200000000ULL);
}

TEST(BitOps, CeilDiv) {
    EXPECT_EQ(ceil_div(0, 4), 0u);
    EXPECT_EQ(ceil_div(1, 4), 1u);
    EXPECT_EQ(ceil_div(4, 4), 1u);
    EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(BitOps, IsPow2) {
    EXPECT_FALSE(is_pow2(0));
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(65));
}

TEST(BitOps, Popcount64) {
    EXPECT_EQ(popcount64(0), 0);
    EXPECT_EQ(popcount64(1), 1);
    EXPECT_EQ(popcount64(~std::uint64_t{0}), 64);
    EXPECT_EQ(popcount64(0x8000000000000001ULL), 2);
    EXPECT_EQ(popcount64(0x5555555555555555ULL), 32);
}

TEST(BitOps, LowestSetBit) {
    EXPECT_EQ(lowest_set_bit(1), 0);
    EXPECT_EQ(lowest_set_bit(0x80), 7);
    EXPECT_EQ(lowest_set_bit(std::uint64_t{1} << 63), 63);
}

TEST(BitOps, ForEachSetBitVisitsAscending) {
    std::vector<int> seen;
    for_each_set_bit(0x8000000000000105ULL, [&](int b) { seen.push_back(b); });
    EXPECT_EQ(seen, (std::vector<int>{0, 2, 8, 63}));
    seen.clear();
    for_each_set_bit(0, [&](int b) { seen.push_back(b); });
    EXPECT_TRUE(seen.empty());
}

TEST(BitOps, BitTranspose64x64MatchesNaive) {
    Rng rng{11};
    std::array<std::uint64_t, 64> x{};
    for (auto& w : x) w = (std::uint64_t{rng()} << 32) | rng();
    std::array<std::uint64_t, 64> t = x;
    bit_transpose_64x64(t.data());
    for (int r = 0; r < 64; ++r) {
        for (int c = 0; c < 64; ++c) {
            const auto orig = (x[static_cast<std::size_t>(r)] >> c) & 1u;
            const auto flip = (t[static_cast<std::size_t>(c)] >> r) & 1u;
            ASSERT_EQ(orig, flip) << "bit (" << r << "," << c << ")";
        }
    }
}

TEST(BitOps, BitTransposeIsInvolution) {
    Rng rng{17};
    std::array<std::uint64_t, 64> x{};
    for (auto& w : x) w = (std::uint64_t{rng()} << 32) | rng();
    std::array<std::uint64_t, 64> t = x;
    bit_transpose_64x64(t.data());
    bit_transpose_64x64(t.data());
    EXPECT_EQ(t, x);
}

// --------------------------------- rng -----------------------------------

TEST(Rng, DeterministicForSeed) {
    Rng a{42}, b{42};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a{1}, b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a() == b();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
    Rng rng{7};
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, BelowIsRoughlyUniform) {
    Rng rng{9};
    std::array<int, 8> histogram{};
    constexpr int kDraws = 80000;
    for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(8)];
    for (const auto count : histogram) {
        EXPECT_NEAR(count, kDraws / 8, kDraws / 80);
    }
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng{13};
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a{5};
    Rng b = a.split(1);
    Rng c = a.split(2);
    EXPECT_NE(b(), c());
}

// ------------------------------ thread pool ------------------------------

TEST(ThreadPool, RunsAllJobs) {
    ThreadPool pool{4};
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
    ThreadPool pool{2};
    pool.wait_idle();  // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, SizeMatchesRequested) {
    ThreadPool pool{3};
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ReusableAcrossBatches) {
    ThreadPool pool{2};
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
        pool.wait_idle();
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitManyRunsAllJobs) {
    ThreadPool pool{4};
    std::atomic<int> counter{0};
    std::vector<std::function<void()>> jobs;
    for (int i = 0; i < 250; ++i) jobs.emplace_back([&counter] { ++counter; });
    pool.submit_many(std::move(jobs));
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPool, SubmitManyEmptyBatchIsNoop) {
    ThreadPool pool{2};
    pool.submit_many({});
    pool.wait_idle();
    SUCCEED();
}

TEST(ThreadPool, RunDynamicCoversEveryTicketExactlyOnce) {
    ThreadPool pool{4};
    std::vector<std::atomic<int>> hits(1000);
    pool.run_dynamic(hits.size(), [&](std::size_t t) { hits[t].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunDynamicZeroTicketsReturns) {
    ThreadPool pool{2};
    bool called = false;
    pool.run_dynamic(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, RunDynamicSingleTicket) {
    ThreadPool pool{4};
    std::atomic<int> counter{0};
    pool.run_dynamic(1, [&](std::size_t) { ++counter; });
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, RunDynamicBackToBackLaunches) {
    ThreadPool pool{4};
    std::atomic<int> counter{0};
    for (int round = 0; round < 20; ++round) {
        pool.run_dynamic(50, [&](std::size_t) { ++counter; });
    }
    EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, RunDynamicReentrantFromTicketBody) {
    // A ticket body launching its own bulk must make progress even when every
    // other worker is busy: the inner launcher claims its own tickets.
    ThreadPool pool{2};
    std::atomic<int> counter{0};
    pool.run_dynamic(4, [&](std::size_t) {
        pool.run_dynamic(8, [&](std::size_t) { ++counter; });
    });
    EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, RunDynamicConcurrentLaunchers) {
    ThreadPool pool{4};
    std::atomic<int> counter{0};
    // Raw threads on purpose: this test hammers the pool from *external*
    // launcher threads to prove run_dynamic is safe to call concurrently.
    std::vector<std::thread> launchers;  // lint:allow(std-thread)
    for (int l = 0; l < 3; ++l) {
        launchers.emplace_back([&pool, &counter] {
            pool.run_dynamic(200, [&](std::size_t) { ++counter; });
        });
    }
    for (auto& t : launchers) t.join();
    EXPECT_EQ(counter.load(), 600);
}

TEST(ThreadPool, RunDynamicInterleavesWithSubmit) {
    ThreadPool pool{4};
    std::atomic<int> jobs{0};
    std::atomic<int> tickets{0};
    for (int i = 0; i < 50; ++i) pool.submit([&jobs] { ++jobs; });
    pool.run_dynamic(100, [&](std::size_t) { ++tickets; });
    pool.wait_idle();
    EXPECT_EQ(jobs.load(), 50);
    EXPECT_EQ(tickets.load(), 100);
}

// ------------------------------- parallel --------------------------------

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
    ThreadPool pool{4};
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(&pool, hits.size(), 16, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ForWithNullPoolIsSequential) {
    std::vector<int> hits(257, 0);
    parallel_for(nullptr, hits.size(), 16, [&](std::size_t i) { hits[i] += 1; });
    for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, ForZeroElementsIsNoop) {
    ThreadPool pool{2};
    bool called = false;
    parallel_for(&pool, 0, 1, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(Parallel, ChunksPartitionTheRange) {
    ThreadPool pool{4};
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for_chunks(&pool, 1000, 10, [&](std::size_t b, std::size_t e) {
        std::lock_guard lock{m};
        chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    std::size_t expected_begin = 0;
    for (const auto& [b, e] : chunks) {
        EXPECT_EQ(b, expected_begin);
        EXPECT_LT(b, e);
        expected_begin = e;
    }
    EXPECT_EQ(expected_begin, 1000u);
}

TEST(Parallel, StaticScheduleCoversEveryIndexExactlyOnce) {
    ThreadPool pool{4};
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(
        &pool, hits.size(), 16, [&](std::size_t i) { hits[i].fetch_add(1); },
        Schedule::Static);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, BothSchedulesHandleGrainEdgeCases) {
    ThreadPool pool{3};
    for (const auto schedule : {Schedule::Dynamic, Schedule::Static}) {
        for (const std::size_t grain : {std::size_t{0}, std::size_t{1}}) {
            std::vector<std::atomic<int>> hits(97);
            parallel_for(
                &pool, hits.size(), grain, [&](std::size_t i) { hits[i].fetch_add(1); },
                schedule);
            for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
        }
    }
}

TEST(Parallel, StaticChunksPartitionTheRange) {
    ThreadPool pool{4};
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    parallel_for_chunks(
        &pool, 1000, 10,
        [&](std::size_t b, std::size_t e) {
            std::lock_guard lock{m};
            chunks.emplace_back(b, e);
        },
        Schedule::Static);
    std::sort(chunks.begin(), chunks.end());
    std::size_t expected_begin = 0;
    for (const auto& [b, e] : chunks) {
        EXPECT_EQ(b, expected_begin);
        EXPECT_LT(b, e);
        expected_begin = e;
    }
    EXPECT_EQ(expected_begin, 1000u);
}

TEST(Parallel, ExclusiveScanMatchesStdVersion) {
    std::vector<std::uint32_t> data{3, 0, 7, 1, 4};
    const auto total = exclusive_scan(data);
    EXPECT_EQ(total, 15u);
    EXPECT_EQ(data, (std::vector<std::uint32_t>{0, 3, 3, 10, 11}));
}

TEST(Parallel, ExclusiveScanEmpty) {
    std::vector<std::uint32_t> data;
    EXPECT_EQ(exclusive_scan(data), 0u);
}

TEST(Parallel, ExclusiveScan64) {
    std::vector<std::uint64_t> data{1, 2, 3};
    EXPECT_EQ(exclusive_scan(data), 6u);
    EXPECT_EQ(data, (std::vector<std::uint64_t>{0, 1, 3}));
}

TEST(Parallel, ParallelExclusiveScanMatchesSequential) {
    ThreadPool pool{4};
    Rng rng{99};
    // Spans both the sequential small-input fallback and the two-level path.
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{1000},
                                std::size_t{100000}}) {
        std::vector<std::uint32_t> data(n);
        for (auto& v : data) v = static_cast<std::uint32_t>(rng.below(100));
        auto expected = data;
        const auto expected_total = exclusive_scan(expected);
        const auto total = exclusive_scan(&pool, data);
        EXPECT_EQ(total, expected_total) << "n=" << n;
        EXPECT_EQ(data, expected) << "n=" << n;
    }
}

TEST(Parallel, ParallelExclusiveScanNullPoolFallsBack) {
    std::vector<std::uint32_t> data{5, 1, 2};
    EXPECT_EQ(exclusive_scan(nullptr, data), 8u);
    EXPECT_EQ(data, (std::vector<std::uint32_t>{0, 5, 6}));
}

// --------------------------------- zipf ----------------------------------

TEST(Zipf, UniformWhenSkewZero) {
    ZipfSampler z{4, 0.0};
    Rng rng{21};
    std::array<int, 4> histogram{};
    for (int i = 0; i < 40000; ++i) ++histogram[z(rng)];
    for (const auto count : histogram) EXPECT_NEAR(count, 10000, 800);
}

TEST(Zipf, SkewedFavoursSmallIndices) {
    ZipfSampler z{16, 1.2};
    Rng rng{22};
    std::array<int, 16> histogram{};
    for (int i = 0; i < 40000; ++i) ++histogram[z(rng)];
    EXPECT_GT(histogram[0], histogram[1]);
    EXPECT_GT(histogram[1], histogram[4]);
    EXPECT_GT(histogram[0], 4 * histogram[8]);
}

TEST(Zipf, SamplesInRange) {
    ZipfSampler z{5, 2.0};
    Rng rng{23};
    for (int i = 0; i < 1000; ++i) EXPECT_LT(z(rng), 5u);
}

}  // namespace
}  // namespace spbla::util
