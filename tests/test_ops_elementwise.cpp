#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "ops/ewise_add.hpp"
#include "ops/ewise_mult.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::random_csr;
using testing::seq_ctx;

// Op suites run on the shared contexts; CheckedContext asserts the
// MemoryTracker leak report is clean after every test.
using EwiseAddCsr = ::spbla::testing::CheckedContext;
using EwiseAddCoo = ::spbla::testing::CheckedContext;
using EwiseMult = ::spbla::testing::CheckedContext;
using EwiseDiff = ::spbla::testing::CheckedContext;

TEST_F(EwiseAddCsr, EmptyPlusEmpty) {
    const CsrMatrix a{4, 4}, b{4, 4};
    const auto c = ops::ewise_add(ctx(), a, b);
    EXPECT_EQ(c.nnz(), 0u);
}

TEST_F(EwiseAddCsr, ShapeMismatchThrows) {
    const CsrMatrix a{4, 4}, b{4, 5};
    EXPECT_THROW((void)ops::ewise_add(ctx(), a, b), Error);
}

TEST_F(EwiseAddCsr, UnionOfDisjoint) {
    const auto a = CsrMatrix::from_coords(2, 4, {{0, 0}, {1, 2}});
    const auto b = CsrMatrix::from_coords(2, 4, {{0, 3}, {1, 1}});
    const auto c = ops::ewise_add(ctx(), a, b);
    EXPECT_EQ(c.to_coords(), (std::vector<Coord>{{0, 0}, {0, 3}, {1, 1}, {1, 2}}));
}

TEST_F(EwiseAddCsr, OverlapCollapses) {
    const auto a = CsrMatrix::from_coords(1, 3, {{0, 1}});
    const auto b = CsrMatrix::from_coords(1, 3, {{0, 1}, {0, 2}});
    const auto c = ops::ewise_add(ctx(), a, b);
    EXPECT_EQ(c.nnz(), 2u);
}

TEST_F(EwiseAddCsr, IsIdempotent) {
    const auto a = random_csr(30, 30, 0.15, 42);
    EXPECT_EQ(ops::ewise_add(ctx(), a, a), a);
}

TEST_F(EwiseAddCsr, IsCommutative) {
    const auto a = random_csr(25, 40, 0.1, 43);
    const auto b = random_csr(25, 40, 0.1, 44);
    EXPECT_EQ(ops::ewise_add(ctx(), a, b), ops::ewise_add(ctx(), b, a));
}

TEST_F(EwiseAddCsr, IsAssociative) {
    const auto a = random_csr(20, 20, 0.1, 45);
    const auto b = random_csr(20, 20, 0.1, 46);
    const auto c = random_csr(20, 20, 0.1, 47);
    const auto left = ops::ewise_add(ctx(), ops::ewise_add(ctx(), a, b), c);
    const auto right = ops::ewise_add(ctx(), a, ops::ewise_add(ctx(), b, c));
    EXPECT_EQ(left, right);
}

TEST_F(EwiseAddCsr, ZeroIsNeutral) {
    const auto a = random_csr(30, 30, 0.2, 48);
    const CsrMatrix zero{30, 30};
    EXPECT_EQ(ops::ewise_add(ctx(), a, zero), a);
    EXPECT_EQ(ops::ewise_add(ctx(), zero, a), a);
}

TEST_F(EwiseAddCsr, BackendsAgree) {
    const auto a = random_csr(80, 80, 0.05, 49);
    const auto b = random_csr(80, 80, 0.05, 50);
    EXPECT_EQ(ops::ewise_add(ctx(), a, b), ops::ewise_add(seq_ctx(), a, b));
}

TEST_F(EwiseAddCoo, MatchesCsrPath) {
    const auto a = random_csr(40, 40, 0.1, 51);
    const auto b = random_csr(40, 40, 0.1, 52);
    const auto coo_sum = ops::ewise_add(ctx(), to_coo(a), to_coo(b));
    coo_sum.validate();
    EXPECT_EQ(to_csr(coo_sum), ops::ewise_add(ctx(), a, b));
}

TEST_F(EwiseAddCoo, ShapeMismatchThrows) {
    const CooMatrix a{4, 4}, b{5, 4};
    EXPECT_THROW((void)ops::ewise_add(ctx(), a, b), Error);
}

TEST_F(EwiseAddCoo, DuplicateEntriesMergeOnce) {
    const auto a = CooMatrix::from_coords(3, 3, {{0, 0}, {1, 1}});
    const auto b = CooMatrix::from_coords(3, 3, {{0, 0}, {2, 2}});
    const auto c = ops::ewise_add(ctx(), a, b);
    EXPECT_EQ(c.nnz(), 3u);
    c.validate();
}

TEST_F(EwiseAddCoo, TrackedBufferIsTransient) {
    backend::Context local{backend::Policy::Sequential};
    const auto a = to_coo(random_csr(30, 30, 0.2, 53));
    const auto b = to_coo(random_csr(30, 30, 0.2, 54));
    (void)ops::ewise_add(local, a, b);
    EXPECT_EQ(local.tracker().current_bytes(), 0u);
    // The one-pass merge allocates nnz(A)+nnz(B) up front, in both arrays.
    EXPECT_GE(local.tracker().peak_bytes(), (a.nnz() + b.nnz()) * 2 * sizeof(Index));
}

// ------------------------------ ewise_mult -------------------------------

TEST_F(EwiseMult, IntersectionBasics) {
    const auto a = CsrMatrix::from_coords(2, 4, {{0, 0}, {0, 2}, {1, 1}});
    const auto b = CsrMatrix::from_coords(2, 4, {{0, 2}, {0, 3}, {1, 1}});
    const auto c = ops::ewise_mult(ctx(), a, b);
    EXPECT_EQ(c.to_coords(), (std::vector<Coord>{{0, 2}, {1, 1}}));
}

TEST_F(EwiseMult, DisjointGivesEmpty) {
    const auto a = CsrMatrix::from_coords(2, 2, {{0, 0}});
    const auto b = CsrMatrix::from_coords(2, 2, {{1, 1}});
    EXPECT_EQ(ops::ewise_mult(ctx(), a, b).nnz(), 0u);
}

TEST_F(EwiseMult, IsIdempotentAndCommutative) {
    const auto a = random_csr(30, 30, 0.2, 60);
    const auto b = random_csr(30, 30, 0.2, 61);
    EXPECT_EQ(ops::ewise_mult(ctx(), a, a), a);
    EXPECT_EQ(ops::ewise_mult(ctx(), a, b), ops::ewise_mult(ctx(), b, a));
}

TEST_F(EwiseMult, AbsorptionWithAdd) {
    // A & (A | B) == A over the Boolean lattice.
    const auto a = random_csr(25, 25, 0.15, 62);
    const auto b = random_csr(25, 25, 0.15, 63);
    EXPECT_EQ(ops::ewise_mult(ctx(), a, ops::ewise_add(ctx(), a, b)), a);
}

TEST_F(EwiseMult, ShapeMismatchThrows) {
    const CsrMatrix a{2, 3}, b{3, 3};
    EXPECT_THROW((void)ops::ewise_mult(ctx(), a, b), Error);
}

// ------------------------------ ewise_diff -------------------------------

TEST_F(EwiseDiff, SetDifferenceBasics) {
    const auto a = CsrMatrix::from_coords(2, 4, {{0, 0}, {0, 2}, {1, 1}});
    const auto b = CsrMatrix::from_coords(2, 4, {{0, 2}});
    const auto c = ops::ewise_diff(ctx(), a, b);
    EXPECT_EQ(c.to_coords(), (std::vector<Coord>{{0, 0}, {1, 1}}));
}

TEST_F(EwiseDiff, SelfDifferenceIsEmpty) {
    const auto a = random_csr(20, 20, 0.3, 64);
    EXPECT_EQ(ops::ewise_diff(ctx(), a, a).nnz(), 0u);
}

TEST_F(EwiseDiff, PartitionLaw) {
    // (A \ B) | (A & B) == A, and the two parts are disjoint.
    const auto a = random_csr(30, 30, 0.2, 65);
    const auto b = random_csr(30, 30, 0.2, 66);
    const auto diff = ops::ewise_diff(ctx(), a, b);
    const auto inter = ops::ewise_mult(ctx(), a, b);
    EXPECT_EQ(ops::ewise_add(ctx(), diff, inter), a);
    EXPECT_EQ(ops::ewise_mult(ctx(), diff, inter).nnz(), 0u);
}

TEST_F(EwiseDiff, EmptySubtrahendIsIdentity) {
    const auto a = random_csr(10, 10, 0.3, 67);
    EXPECT_EQ(ops::ewise_diff(ctx(), a, CsrMatrix{10, 10}), a);
}

// Property sweep against the dense reference.
struct AddCase {
    Index m, n;
    double da, db;
    std::uint64_t seed;
};

class EwiseAddSweep : public ::spbla::testing::CheckedContextWithParam<AddCase> {};

TEST_P(EwiseAddSweep, MatchesDenseReference) {
    const auto p = GetParam();
    const auto a = random_csr(p.m, p.n, p.da, p.seed);
    const auto b = random_csr(p.m, p.n, p.db, p.seed + 100);
    const auto expected = to_csr(to_dense(a).ewise_or(to_dense(b)));
    const auto csr_sum = ops::ewise_add(ctx(), a, b);
    csr_sum.validate();
    EXPECT_EQ(csr_sum, expected);
    EXPECT_EQ(to_csr(ops::ewise_add(ctx(), to_coo(a), to_coo(b))), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EwiseAddSweep,
    ::testing::Values(AddCase{1, 1, 1.0, 1.0, 1}, AddCase{1, 200, 0.1, 0.4, 2},
                      AddCase{200, 1, 0.4, 0.1, 3}, AddCase{50, 50, 0.01, 0.01, 4},
                      AddCase{50, 50, 0.7, 0.7, 5}, AddCase{33, 77, 0.2, 0.05, 6},
                      AddCase{128, 64, 0.1, 0.1, 7}, AddCase{64, 128, 0.15, 0.15, 8}));

}  // namespace
}  // namespace spbla
