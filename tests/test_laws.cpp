/// \file test_laws.cpp
/// \brief Cross-cutting algebraic laws — properties that tie several
/// kernels (or whole engines) together, beyond per-op reference checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfpq/azimov.hpp"
#include "cfpq/worklist.hpp"
// Sharded-law suites exercise the tile kernels on explicit mismatched grids
// (tests are a sanctioned import site for the private dist headers).
#include "dist/device_group.hpp"    // lint:allow(format-leak)
#include "dist/dist.hpp"
#include "dist/partition.hpp"       // lint:allow(format-leak)
#include "dist/sharded_matrix.hpp"  // lint:allow(format-leak)
#include "dist/sharded_ops.hpp"     // lint:allow(format-leak)
#include "data/labeled_graph.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "rpq/engine.hpp"
#include "util/rng.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::random_csr;

// ------------------------- matrix algebra laws ---------------------------

TEST(Laws, MultiplicationIsAssociative) {
    for (const auto seed : {1, 2, 3}) {
        const auto a = random_csr(20, 25, 0.15, seed);
        const auto b = random_csr(25, 15, 0.15, seed + 10);
        const auto c = random_csr(15, 30, 0.15, seed + 20);
        EXPECT_EQ(ops::multiply(ctx(), ops::multiply(ctx(), a, b), c),
                  ops::multiply(ctx(), a, ops::multiply(ctx(), b, c)))
            << seed;
    }
}

TEST(Laws, MultiplicationDistributesOverAddition) {
    const auto a = random_csr(20, 20, 0.15, 5);
    const auto b = random_csr(20, 20, 0.15, 6);
    const auto c = random_csr(20, 20, 0.15, 7);
    // A(B + C) == AB + AC over the Boolean semiring.
    EXPECT_EQ(ops::multiply(ctx(), a, ops::ewise_add(ctx(), b, c)),
              ops::ewise_add(ctx(), ops::multiply(ctx(), a, b),
                             ops::multiply(ctx(), a, c)));
}

TEST(Laws, TransposeAntiDistributesOverMultiply) {
    const auto a = random_csr(18, 24, 0.2, 8);
    const auto b = random_csr(24, 12, 0.2, 9);
    // (AB)^T == B^T A^T.
    EXPECT_EQ(ops::transpose(ctx(), ops::multiply(ctx(), a, b)),
              ops::multiply(ctx(), ops::transpose(ctx(), b), ops::transpose(ctx(), a)));
}

TEST(Laws, KroneckerIsAssociative) {
    const auto a = random_csr(3, 4, 0.4, 10);
    const auto b = random_csr(4, 3, 0.4, 11);
    const auto c = random_csr(2, 5, 0.4, 12);
    EXPECT_EQ(ops::kronecker(ctx(), ops::kronecker(ctx(), a, b), c),
              ops::kronecker(ctx(), a, ops::kronecker(ctx(), b, c)));
}

TEST(Laws, KroneckerTransposeCommute) {
    const auto a = random_csr(4, 6, 0.3, 13);
    const auto b = random_csr(5, 3, 0.3, 14);
    // (A (x) B)^T == A^T (x) B^T.
    EXPECT_EQ(ops::transpose(ctx(), ops::kronecker(ctx(), a, b)),
              ops::kronecker(ctx(), ops::transpose(ctx(), a), ops::transpose(ctx(), b)));
}

TEST(Laws, DeMorganOnStructures) {
    // A \ B == A \ (A & B).
    const auto a = random_csr(25, 25, 0.25, 15);
    const auto b = random_csr(25, 25, 0.25, 16);
    EXPECT_EQ(ops::ewise_diff(ctx(), a, b),
              ops::ewise_diff(ctx(), a, ops::ewise_mult(ctx(), a, b)));
}

TEST(Laws, SubmatrixOfSubmatrixComposes) {
    const auto m = random_csr(40, 40, 0.15, 17);
    const auto once = ops::submatrix(ctx(), m, 4, 6, 30, 28);
    const auto twice = ops::submatrix(ctx(), once, 3, 2, 20, 22);
    EXPECT_EQ(twice, ops::submatrix(ctx(), m, 7, 8, 20, 22));
}

// ----------------------- sharded-execution laws --------------------------
// The blocked kernels must satisfy the same semiring laws as the flat ones
// even when every operand lives on a different tile grid — the laws hold at
// the algebra level, not per lucky grid alignment.

/// a x b through the SUMMA kernel with A on a (ga_r x ga_c) grid and B's
/// column splits chosen independently (gb_c way); B's row splits are forced
/// conformal with A's column splits, as the kernel requires.
Matrix sharded_product(dist::DeviceGroup& grp, const Matrix& a, const Matrix& b,
                       std::size_t ga_r, std::size_t ga_c, std::size_t gb_c) {
    const dist::Partition pa =
        dist::Partition::uniform(a.nrows(), a.ncols(), ga_r, ga_c);
    const dist::Partition pb_probe =
        dist::Partition::uniform(b.nrows(), b.ncols(), 1, gb_c);
    const auto inner = pa.col_splits();
    const auto outer = pb_probe.col_splits();
    const dist::Partition pb{{inner.begin(), inner.end()},
                             {outer.begin(), outer.end()}};
    const dist::ShardedMatrix sa{grp, a, pa, dist::Placement::LoadBalanced};
    const dist::ShardedMatrix sb{grp, b, pb, dist::Placement::RoundRobin};
    return dist::sharded_multiply(ctx(), sa, sb);
}

// ----------------------- bit-block algebra laws --------------------------
// Same algebraic identities, but computed entirely inside the broadword tier
// (ops/bitblock_*), on the leak-checked fixture so every intermediate's
// device allocation is balanced. Shapes straddle the 64-wide tile boundary.

using BitBlockLaws = ::spbla::testing::CheckedContext;

TEST_F(BitBlockLaws, MultiplicationIsAssociative) {
    for (const auto seed : {21, 22, 23}) {
        const auto a = to_bitblocks(ctx(), random_csr(70, 90, 0.12, seed));
        const auto b = to_bitblocks(ctx(), random_csr(90, 50, 0.12, seed + 10));
        const auto c = to_bitblocks(ctx(), random_csr(50, 100, 0.12, seed + 20));
        EXPECT_EQ(ops::multiply(ctx(), ops::multiply(ctx(), a, b), c),
                  ops::multiply(ctx(), a, ops::multiply(ctx(), b, c)))
            << seed;
    }
}

TEST_F(BitBlockLaws, TransposeIsAnInvolution) {
    for (const auto seed : {24, 25}) {
        const auto a = to_bitblocks(ctx(), random_csr(130, 67, 0.2, seed));
        EXPECT_EQ(ops::transpose(ctx(), ops::transpose(ctx(), a)), a) << seed;
    }
}

TEST_F(BitBlockLaws, MultiplicationDistributesOverAddition) {
    const auto a = to_bitblocks(ctx(), random_csr(80, 80, 0.1, 26));
    const auto b = to_bitblocks(ctx(), random_csr(80, 80, 0.1, 27));
    const auto c = to_bitblocks(ctx(), random_csr(80, 80, 0.1, 28));
    // A(B + C) == AB + AC over the Boolean semiring.
    EXPECT_EQ(ops::multiply(ctx(), a, ops::ewise_add(ctx(), b, c)),
              ops::ewise_add(ctx(), ops::multiply(ctx(), a, b),
                             ops::multiply(ctx(), a, c)));
}

TEST_F(BitBlockLaws, EwiseAbsorption) {
    // A | (A & B) == A and A & (A | B) == A.
    const auto a = to_bitblocks(ctx(), random_csr(75, 75, 0.15, 29));
    const auto b = to_bitblocks(ctx(), random_csr(75, 75, 0.15, 30));
    EXPECT_EQ(ops::ewise_add(ctx(), a, ops::ewise_mult(ctx(), a, b)), a);
    EXPECT_EQ(ops::ewise_mult(ctx(), a, ops::ewise_add(ctx(), a, b)), a);
}

TEST(ShardedLaws, BlockedMultiplyIsAssociativeAcrossGrids) {
    dist::DeviceGroup grp{3};
    for (const auto seed : {41, 42, 43}) {
        const Matrix a{random_csr(30, 26, 0.15, seed), ctx()};
        const Matrix b{random_csr(26, 22, 0.15, seed + 10), ctx()};
        const Matrix c{random_csr(22, 34, 0.15, seed + 20), ctx()};
        const Matrix ab = sharded_product(grp, a, b, 2, 3, 2);
        const Matrix bc = sharded_product(grp, b, c, 3, 2, 4);
        const Matrix lhs = sharded_product(grp, ab, c, 4, 2, 3);
        const Matrix rhs = sharded_product(grp, a, bc, 3, 4, 2);
        EXPECT_EQ(lhs.csr(), rhs.csr()) << seed;
        EXPECT_EQ(lhs.csr(),
                  ops::multiply(ctx(), ops::multiply(ctx(), a.csr(), b.csr()),
                                c.csr()))
            << seed;
    }
}

TEST(ShardedLaws, BlockedMultiplyDistributesOverEwiseAdd) {
    dist::DeviceGroup grp{2};
    const Matrix a{random_csr(24, 20, 0.2, 51), ctx()};
    const Matrix b{random_csr(20, 28, 0.2, 52), ctx()};
    const Matrix c{random_csr(20, 28, 0.2, 53), ctx()};
    const dist::Partition p = dist::Partition::uniform(20, 28, 3, 2);
    const dist::ShardedMatrix sb{grp, b, p, dist::Placement::LoadBalanced};
    const dist::ShardedMatrix sc{grp, c, p, dist::Placement::LoadBalanced};
    const Matrix sum = dist::sharded_ewise_add(ctx(), sb, sc);
    // A(B + C) == AB + AC, every product on its own grid.
    const Matrix lhs = sharded_product(grp, a, sum, 2, 2, 3);
    const Matrix ab = sharded_product(grp, a, b, 2, 3, 2);
    const Matrix ac = sharded_product(grp, a, c, 3, 2, 2);
    const dist::Partition pr = dist::Partition::uniform(24, 28, 2, 2);
    const dist::ShardedMatrix sab{grp, ab, pr, dist::Placement::RoundRobin};
    const dist::ShardedMatrix sac{grp, ac, pr, dist::Placement::RoundRobin};
    EXPECT_EQ(lhs.csr(), dist::sharded_ewise_add(ctx(), sab, sac).csr());
    EXPECT_EQ(lhs.csr(),
              ops::multiply(ctx(), a.csr(),
                            ops::ewise_add(ctx(), b.csr(), c.csr())));
}

TEST(ShardedLaws, TransposeIsAnInvolutionAcrossGrids) {
    dist::DeviceGroup grp{4};
    const Matrix a{random_csr(27, 33, 0.2, 61), ctx()};
    const dist::Partition p = dist::Partition::uniform(27, 33, 3, 4);
    const dist::ShardedMatrix sa{grp, a, p, dist::Placement::LoadBalanced};
    const Matrix at = dist::sharded_transpose(ctx(), sa);
    EXPECT_EQ(at.csr(), ops::transpose(ctx(), a.csr()));
    // Re-shard the transpose on an unrelated grid before transposing back.
    const dist::Partition pt = dist::Partition::uniform(33, 27, 2, 5);
    const dist::ShardedMatrix sat{grp, at, pt, dist::Placement::RoundRobin};
    EXPECT_EQ(dist::sharded_transpose(ctx(), sat).csr(), a.csr());
}

TEST(ShardedLaws, KroneckerTransposeCommuteAcrossGrids) {
    dist::DeviceGroup grp{3};
    const Matrix a{random_csr(5, 7, 0.3, 71), ctx()};
    const Matrix b{random_csr(4, 3, 0.35, 72), ctx()};
    // (A (x) B)^T via the sharded kernels ...
    const dist::Partition pa = dist::Partition::uniform(5, 7, 2, 3);
    const dist::ShardedMatrix sa{grp, a, pa, dist::Placement::LoadBalanced};
    const Matrix kron = dist::sharded_kronecker(ctx(), sa, b);
    const dist::Partition pk = dist::Partition::uniform(20, 21, 4, 2);
    const dist::ShardedMatrix sk{grp, kron, pk, dist::Placement::RoundRobin};
    const Matrix lhs = dist::sharded_transpose(ctx(), sk);
    // ... must equal A^T (x) B^T with A^T sharded on yet another grid.
    const Matrix at = dist::sharded_transpose(ctx(), sa);
    const Matrix bt{ops::transpose(ctx(), b.csr()), ctx()};
    const dist::Partition pat = dist::Partition::uniform(7, 5, 3, 2);
    const dist::ShardedMatrix sat{grp, at, pat, dist::Placement::LoadBalanced};
    const Matrix rhs = dist::sharded_kronecker(ctx(), sat, bt);
    EXPECT_EQ(lhs.csr(), rhs.csr());
    EXPECT_EQ(lhs.csr(),
              ops::transpose(ctx(), ops::kronecker(ctx(), a.csr(), b.csr())));
}

// --------------------------- query-engine laws ---------------------------

data::LabeledGraph random_graph(Index n, std::size_t edges, std::uint64_t seed) {
    util::Rng rng{seed};
    std::vector<data::LabeledEdge> list;
    const std::vector<std::string> labels{"a", "b", "c"};
    for (std::size_t k = 0; k < edges; ++k) {
        list.push_back({static_cast<Index>(rng.below(n)),
                        labels[rng.below(labels.size())],
                        static_cast<Index>(rng.below(n))});
    }
    return data::LabeledGraph::from_edges(n, list);
}

TEST(Laws, RpqConcatenationIsBooleanProduct) {
    // answers(L1 . L2) == answers(L1) x answers(L2): language concatenation
    // matricises to the Boolean product of the answer relations.
    for (const auto seed : {31, 32}) {
        const auto g = random_graph(15, 40, seed);
        const auto q1 = rpq::compile_query("a b*");
        const auto q2 = rpq::compile_query("c (a | b)");
        const auto q12 = rpq::compile_query("(a b*) (c (a | b))");
        const auto lhs = rpq::evaluate(ctx(), g, q12);
        const auto rhs = storage::multiply(ctx(), rpq::evaluate(ctx(), g, q1),
                                           rpq::evaluate(ctx(), g, q2));
        EXPECT_EQ(lhs, rhs) << seed;
    }
}

TEST(Laws, RpqUnionIsElementwiseOr) {
    for (const auto seed : {33, 34}) {
        const auto g = random_graph(15, 40, seed);
        const auto lhs =
            rpq::evaluate(ctx(), g, rpq::compile_query("(a b) | (c+)"));
        const auto rhs =
            storage::ewise_add(ctx(), rpq::evaluate(ctx(), g, rpq::compile_query("a b")),
                               rpq::evaluate(ctx(), g, rpq::compile_query("c+")));
        EXPECT_EQ(lhs, rhs) << seed;
    }
}

TEST(Laws, RpqStarIsReflexiveClosureOfPlus) {
    const auto g = random_graph(12, 30, 35);
    const auto star = rpq::evaluate(ctx(), g, rpq::compile_query("(a | b)*"));
    const auto plus = rpq::evaluate(ctx(), g, rpq::compile_query("(a | b)+"));
    EXPECT_EQ(star, storage::ewise_add(ctx(), plus, Matrix::identity(12, ctx())));
}

TEST(Laws, CfpqUnionGrammarIsUnionOfAnswers) {
    // S -> S1 | S2 with disjoint sub-grammars answers the union.
    for (const auto seed : {36, 37}) {
        const auto g = random_graph(10, 24, seed);
        const auto g1 = cfpq::Grammar::parse("S -> a S b | a b\n");
        const auto g2 = cfpq::Grammar::parse("S -> c S | c\n");
        const auto both = cfpq::Grammar::parse(
            "S -> S1 | S2\nS1 -> a S1 b | a b\nS2 -> c S2 | c\n");
        const auto lhs = cfpq::worklist_cfpq(g, both);
        const auto rhs = storage::ewise_add(ctx(), cfpq::worklist_cfpq(g, g1),
                                            cfpq::worklist_cfpq(g, g2));
        EXPECT_EQ(lhs, rhs) << seed;
        EXPECT_EQ(cfpq::azimov_cfpq(ctx(), g, both).reachable(), lhs) << seed;
    }
}

TEST(Laws, RegularGrammarMatchesRpqEngine) {
    // A right-linear grammar and the equivalent regex must answer alike
    // through the two completely separate engines.
    for (const auto seed : {38, 39}) {
        const auto g = random_graph(12, 30, seed);
        const auto grammar = cfpq::Grammar::parse("S -> a S | b\n");  // a* b
        const auto regex = rpq::compile_query("a* b");
        EXPECT_EQ(cfpq::azimov_cfpq(ctx(), g, grammar).reachable(),
                  rpq::evaluate(ctx(), g, regex))
            << seed;
    }
}

}  // namespace
}  // namespace spbla
