/// \file test_laws.cpp
/// \brief Cross-cutting algebraic laws — properties that tie several
/// kernels (or whole engines) together, beyond per-op reference checks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfpq/azimov.hpp"
#include "cfpq/worklist.hpp"
#include "data/labeled_graph.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "rpq/engine.hpp"
#include "util/rng.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::random_csr;

// ------------------------- matrix algebra laws ---------------------------

TEST(Laws, MultiplicationIsAssociative) {
    for (const auto seed : {1, 2, 3}) {
        const auto a = random_csr(20, 25, 0.15, seed);
        const auto b = random_csr(25, 15, 0.15, seed + 10);
        const auto c = random_csr(15, 30, 0.15, seed + 20);
        EXPECT_EQ(ops::multiply(ctx(), ops::multiply(ctx(), a, b), c),
                  ops::multiply(ctx(), a, ops::multiply(ctx(), b, c)))
            << seed;
    }
}

TEST(Laws, MultiplicationDistributesOverAddition) {
    const auto a = random_csr(20, 20, 0.15, 5);
    const auto b = random_csr(20, 20, 0.15, 6);
    const auto c = random_csr(20, 20, 0.15, 7);
    // A(B + C) == AB + AC over the Boolean semiring.
    EXPECT_EQ(ops::multiply(ctx(), a, ops::ewise_add(ctx(), b, c)),
              ops::ewise_add(ctx(), ops::multiply(ctx(), a, b),
                             ops::multiply(ctx(), a, c)));
}

TEST(Laws, TransposeAntiDistributesOverMultiply) {
    const auto a = random_csr(18, 24, 0.2, 8);
    const auto b = random_csr(24, 12, 0.2, 9);
    // (AB)^T == B^T A^T.
    EXPECT_EQ(ops::transpose(ctx(), ops::multiply(ctx(), a, b)),
              ops::multiply(ctx(), ops::transpose(ctx(), b), ops::transpose(ctx(), a)));
}

TEST(Laws, KroneckerIsAssociative) {
    const auto a = random_csr(3, 4, 0.4, 10);
    const auto b = random_csr(4, 3, 0.4, 11);
    const auto c = random_csr(2, 5, 0.4, 12);
    EXPECT_EQ(ops::kronecker(ctx(), ops::kronecker(ctx(), a, b), c),
              ops::kronecker(ctx(), a, ops::kronecker(ctx(), b, c)));
}

TEST(Laws, KroneckerTransposeCommute) {
    const auto a = random_csr(4, 6, 0.3, 13);
    const auto b = random_csr(5, 3, 0.3, 14);
    // (A (x) B)^T == A^T (x) B^T.
    EXPECT_EQ(ops::transpose(ctx(), ops::kronecker(ctx(), a, b)),
              ops::kronecker(ctx(), ops::transpose(ctx(), a), ops::transpose(ctx(), b)));
}

TEST(Laws, DeMorganOnStructures) {
    // A \ B == A \ (A & B).
    const auto a = random_csr(25, 25, 0.25, 15);
    const auto b = random_csr(25, 25, 0.25, 16);
    EXPECT_EQ(ops::ewise_diff(ctx(), a, b),
              ops::ewise_diff(ctx(), a, ops::ewise_mult(ctx(), a, b)));
}

TEST(Laws, SubmatrixOfSubmatrixComposes) {
    const auto m = random_csr(40, 40, 0.15, 17);
    const auto once = ops::submatrix(ctx(), m, 4, 6, 30, 28);
    const auto twice = ops::submatrix(ctx(), once, 3, 2, 20, 22);
    EXPECT_EQ(twice, ops::submatrix(ctx(), m, 7, 8, 20, 22));
}

// --------------------------- query-engine laws ---------------------------

data::LabeledGraph random_graph(Index n, std::size_t edges, std::uint64_t seed) {
    util::Rng rng{seed};
    std::vector<data::LabeledEdge> list;
    const std::vector<std::string> labels{"a", "b", "c"};
    for (std::size_t k = 0; k < edges; ++k) {
        list.push_back({static_cast<Index>(rng.below(n)),
                        labels[rng.below(labels.size())],
                        static_cast<Index>(rng.below(n))});
    }
    return data::LabeledGraph::from_edges(n, list);
}

TEST(Laws, RpqConcatenationIsBooleanProduct) {
    // answers(L1 . L2) == answers(L1) x answers(L2): language concatenation
    // matricises to the Boolean product of the answer relations.
    for (const auto seed : {31, 32}) {
        const auto g = random_graph(15, 40, seed);
        const auto q1 = rpq::compile_query("a b*");
        const auto q2 = rpq::compile_query("c (a | b)");
        const auto q12 = rpq::compile_query("(a b*) (c (a | b))");
        const auto lhs = rpq::evaluate(ctx(), g, q12);
        const auto rhs = storage::multiply(ctx(), rpq::evaluate(ctx(), g, q1),
                                           rpq::evaluate(ctx(), g, q2));
        EXPECT_EQ(lhs, rhs) << seed;
    }
}

TEST(Laws, RpqUnionIsElementwiseOr) {
    for (const auto seed : {33, 34}) {
        const auto g = random_graph(15, 40, seed);
        const auto lhs =
            rpq::evaluate(ctx(), g, rpq::compile_query("(a b) | (c+)"));
        const auto rhs =
            storage::ewise_add(ctx(), rpq::evaluate(ctx(), g, rpq::compile_query("a b")),
                               rpq::evaluate(ctx(), g, rpq::compile_query("c+")));
        EXPECT_EQ(lhs, rhs) << seed;
    }
}

TEST(Laws, RpqStarIsReflexiveClosureOfPlus) {
    const auto g = random_graph(12, 30, 35);
    const auto star = rpq::evaluate(ctx(), g, rpq::compile_query("(a | b)*"));
    const auto plus = rpq::evaluate(ctx(), g, rpq::compile_query("(a | b)+"));
    EXPECT_EQ(star, storage::ewise_add(ctx(), plus, Matrix::identity(12, ctx())));
}

TEST(Laws, CfpqUnionGrammarIsUnionOfAnswers) {
    // S -> S1 | S2 with disjoint sub-grammars answers the union.
    for (const auto seed : {36, 37}) {
        const auto g = random_graph(10, 24, seed);
        const auto g1 = cfpq::Grammar::parse("S -> a S b | a b\n");
        const auto g2 = cfpq::Grammar::parse("S -> c S | c\n");
        const auto both = cfpq::Grammar::parse(
            "S -> S1 | S2\nS1 -> a S1 b | a b\nS2 -> c S2 | c\n");
        const auto lhs = cfpq::worklist_cfpq(g, both);
        const auto rhs = storage::ewise_add(ctx(), cfpq::worklist_cfpq(g, g1),
                                            cfpq::worklist_cfpq(g, g2));
        EXPECT_EQ(lhs, rhs) << seed;
        EXPECT_EQ(cfpq::azimov_cfpq(ctx(), g, both).reachable(), lhs) << seed;
    }
}

TEST(Laws, RegularGrammarMatchesRpqEngine) {
    // A right-linear grammar and the equivalent regex must answer alike
    // through the two completely separate engines.
    for (const auto seed : {38, 39}) {
        const auto g = random_graph(12, 30, seed);
        const auto grammar = cfpq::Grammar::parse("S -> a S | b\n");  // a* b
        const auto regex = rpq::compile_query("a* b");
        EXPECT_EQ(cfpq::azimov_cfpq(ctx(), g, grammar).reachable(),
                  rpq::evaluate(ctx(), g, regex))
            << seed;
    }
}

}  // namespace
}  // namespace spbla
