#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "ops/ewise_mult.hpp"
#include "ops/kronecker.hpp"
#include "ops/masked.hpp"
#include "ops/spgemm.hpp"
#include "ops/mxv.hpp"
#include "ops/reduce.hpp"
#include "ops/submatrix.hpp"
#include "ops/transpose.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::random_csr;
using testing::seq_ctx;

// Op suites run on the shared contexts; CheckedContext asserts the
// MemoryTracker leak report is clean after every test.
using Transpose = ::spbla::testing::CheckedContext;
using Submatrix = ::spbla::testing::CheckedContext;
using Kronecker = ::spbla::testing::CheckedContext;
using Reduce = ::spbla::testing::CheckedContext;
using Mxv = ::spbla::testing::CheckedContext;
using Vxm = ::spbla::testing::CheckedContext;
using MxvVxm = ::spbla::testing::CheckedContext;
using MaskedMultiply = ::spbla::testing::CheckedContext;
using Structural = ::spbla::testing::CheckedContext;

// ------------------------------- kronecker -------------------------------

TEST_F(Kronecker, SmallManualCase) {
    const auto a = CsrMatrix::from_coords(2, 2, {{0, 1}});
    const auto b = CsrMatrix::from_coords(2, 2, {{1, 0}});
    const auto k = ops::kronecker(ctx(), a, b);
    EXPECT_EQ(k.nrows(), 4u);
    EXPECT_EQ(k.ncols(), 4u);
    EXPECT_EQ(k.to_coords(), (std::vector<Coord>{{1, 2}}));
}

TEST_F(Kronecker, WithEmptyOperandIsEmpty) {
    const auto a = random_csr(4, 4, 0.5, 1);
    const CsrMatrix empty{3, 3};
    EXPECT_EQ(ops::kronecker(ctx(), a, empty).nnz(), 0u);
    EXPECT_EQ(ops::kronecker(ctx(), empty, a).nnz(), 0u);
}

TEST_F(Kronecker, NnzIsProductOfNnz) {
    const auto a = random_csr(6, 7, 0.3, 2);
    const auto b = random_csr(5, 4, 0.3, 3);
    const auto k = ops::kronecker(ctx(), a, b);
    EXPECT_EQ(k.nnz(), a.nnz() * b.nnz());
}

TEST_F(Kronecker, IdentityTimesIdentity) {
    const auto k = ops::kronecker(ctx(), CsrMatrix::identity(3), CsrMatrix::identity(4));
    EXPECT_EQ(k, CsrMatrix::identity(12));
}

TEST_F(Kronecker, MixedProductProperty) {
    // (A (x) B) * (C (x) D) == (A*C) (x) (B*D) over the Boolean semiring.
    const auto a = random_csr(5, 6, 0.3, 4);
    const auto b = random_csr(3, 4, 0.3, 5);
    const auto c = random_csr(6, 5, 0.3, 6);
    const auto d = random_csr(4, 3, 0.3, 7);
    const auto lhs = to_dense(ops::kronecker(ctx(), a, b))
                         .multiply(to_dense(ops::kronecker(ctx(), c, d)));
    const auto rhs_ac = to_dense(a).multiply(to_dense(c));
    const auto rhs_bd = to_dense(b).multiply(to_dense(d));
    EXPECT_EQ(lhs, to_dense(ops::kronecker(ctx(), to_csr(rhs_ac), to_csr(rhs_bd))));
}

class KroneckerSweep
    : public ::spbla::testing::CheckedContextWithParam<std::tuple<Index, Index, double>> {};

TEST_P(KroneckerSweep, MatchesDenseReference) {
    const auto [ar, br, density] = GetParam();
    const auto a = random_csr(ar, ar + 1, density, 10 + ar);
    const auto b = random_csr(br, br + 2, density, 20 + br);
    const auto got = ops::kronecker(ctx(), a, b);
    got.validate();
    EXPECT_EQ(got, to_csr(to_dense(a).kronecker(to_dense(b))));
}

INSTANTIATE_TEST_SUITE_P(Cases, KroneckerSweep,
                         ::testing::Combine(::testing::Values(1, 3, 8, 16),
                                            ::testing::Values(1, 4, 9),
                                            ::testing::Values(0.2, 0.6)));

// ------------------------------- transpose -------------------------------

TEST_F(Transpose, SmallManualCase) {
    const auto m = CsrMatrix::from_coords(2, 3, {{0, 2}, {1, 0}});
    const auto t = ops::transpose(ctx(), m);
    EXPECT_EQ(t.nrows(), 3u);
    EXPECT_EQ(t.ncols(), 2u);
    EXPECT_EQ(t.to_coords(), (std::vector<Coord>{{0, 1}, {2, 0}}));
}

TEST_F(Transpose, InvolutionProperty) {
    const auto m = random_csr(31, 47, 0.1, 30);
    EXPECT_EQ(ops::transpose(ctx(), ops::transpose(ctx(), m)), m);
}

TEST_F(Transpose, EmptyMatrix) {
    const CsrMatrix m{5, 3};
    const auto t = ops::transpose(ctx(), m);
    EXPECT_EQ(t.nrows(), 3u);
    EXPECT_EQ(t.nnz(), 0u);
}

TEST_F(Transpose, MatchesDenseReference) {
    const auto m = random_csr(60, 40, 0.15, 31);
    const auto t = ops::transpose(ctx(), m);
    t.validate();
    EXPECT_EQ(t, to_csr(to_dense(m).transpose()));
}

// ------------------------------- submatrix -------------------------------

TEST_F(Submatrix, FullWindowIsIdentityOp) {
    const auto m = random_csr(20, 30, 0.2, 40);
    EXPECT_EQ(ops::submatrix(ctx(), m, 0, 0, 20, 30), m);
}

TEST_F(Submatrix, WindowBeyondShapeThrows) {
    const auto m = random_csr(10, 10, 0.2, 41);
    EXPECT_THROW((void)ops::submatrix(ctx(), m, 5, 5, 6, 5), Error);
    EXPECT_THROW((void)ops::submatrix(ctx(), m, 5, 5, 5, 6), Error);
}

TEST_F(Submatrix, EmptyWindow) {
    const auto m = random_csr(10, 10, 0.3, 42);
    const auto s = ops::submatrix(ctx(), m, 3, 3, 0, 0);
    EXPECT_EQ(s.nrows(), 0u);
    EXPECT_EQ(s.nnz(), 0u);
}

TEST_F(Submatrix, RebasesIndices) {
    const auto m = CsrMatrix::from_coords(4, 4, {{2, 3}, {3, 2}});
    const auto s = ops::submatrix(ctx(), m, 2, 2, 2, 2);
    EXPECT_EQ(s.to_coords(), (std::vector<Coord>{{0, 1}, {1, 0}}));
}

class SubmatrixSweep
    : public ::spbla::testing::CheckedContextWithParam<std::tuple<Index, Index, Index, Index>> {};

TEST_P(SubmatrixSweep, MatchesDenseReference) {
    const auto [r0, c0, h, w] = GetParam();
    const auto m = random_csr(32, 32, 0.2, 43);
    const auto s = ops::submatrix(ctx(), m, r0, c0, h, w);
    s.validate();
    EXPECT_EQ(s, to_csr(to_dense(m).submatrix(r0, c0, h, w)));
}

INSTANTIATE_TEST_SUITE_P(Cases, SubmatrixSweep,
                         ::testing::Values(std::tuple{0u, 0u, 16u, 16u},
                                           std::tuple{16u, 16u, 16u, 16u},
                                           std::tuple{5u, 9u, 20u, 13u},
                                           std::tuple{31u, 0u, 1u, 32u},
                                           std::tuple{0u, 31u, 32u, 1u}));

// -------------------------------- reduce ---------------------------------

TEST_F(Reduce, ToColumnMarksNonEmptyRows) {
    const auto m = CsrMatrix::from_coords(4, 4, {{0, 1}, {2, 2}, {2, 3}});
    const auto v = ops::reduce_to_column(ctx(), m);
    EXPECT_EQ(v, SpVector::from_indices(4, {0, 2}));
}

TEST_F(Reduce, ToRowMarksNonEmptyColumns) {
    const auto m = CsrMatrix::from_coords(4, 4, {{0, 1}, {2, 2}, {3, 1}});
    const auto v = ops::reduce_to_row(ctx(), m);
    EXPECT_EQ(v, SpVector::from_indices(4, {1, 2}));
}

TEST_F(Reduce, RowColumnDuality) {
    const auto m = random_csr(25, 35, 0.1, 44);
    EXPECT_EQ(ops::reduce_to_row(ctx(), m),
              ops::reduce_to_column(ctx(), ops::transpose(ctx(), m)));
}

TEST_F(Reduce, ScalarIsNnz) {
    const auto m = random_csr(10, 10, 0.4, 45);
    EXPECT_EQ(ops::reduce_scalar(m), m.nnz());
}

// ------------------------------- mxv / vxm -------------------------------

TEST_F(Mxv, SelectsRowsHittingFrontier) {
    const auto m = CsrMatrix::from_coords(3, 3, {{0, 1}, {2, 0}});
    const auto x = SpVector::from_indices(3, {1});
    // Row 0 contains column 1 -> hit; rows 1, 2 do not.
    EXPECT_EQ(ops::mxv(ctx(), m, x), SpVector::from_indices(3, {0}));
}

TEST_F(Vxm, PushesFrontierAlongEdges) {
    const auto m = CsrMatrix::from_coords(3, 3, {{0, 1}, {1, 2}});
    const auto x = SpVector::from_indices(3, {0});
    EXPECT_EQ(ops::vxm(ctx(), x, m), SpVector::from_indices(3, {1}));
}

TEST_F(MxvVxm, ShapeMismatchThrows) {
    const CsrMatrix m{3, 4};
    const auto bad = SpVector::from_indices(3, {0});
    EXPECT_THROW((void)ops::mxv(ctx(), m, bad), Error);
    const auto bad2 = SpVector::from_indices(4, {0});
    EXPECT_THROW((void)ops::vxm(ctx(), bad2, m), Error);
}

TEST_F(MxvVxm, AgreeWithDenseSemantics) {
    const auto m = random_csr(30, 30, 0.1, 46);
    const auto x = SpVector::from_indices(30, {1, 5, 7, 20, 29});
    const auto y = ops::mxv(ctx(), m, x);
    const auto d = to_dense(m);
    for (Index i = 0; i < 30; ++i) {
        bool expect = false;
        for (const auto j : x.indices()) expect = expect || d.get(i, j);
        EXPECT_EQ(y.get(i), expect) << "row " << i;
    }
    const auto z = ops::vxm(ctx(), x, m);
    for (Index j = 0; j < 30; ++j) {
        bool expect = false;
        for (const auto i : x.indices()) expect = expect || d.get(i, j);
        EXPECT_EQ(z.get(j), expect) << "col " << j;
    }
}

TEST_F(MxvVxm, VxmEqualsMxvOnTranspose) {
    const auto m = random_csr(40, 40, 0.08, 47);
    const auto x = SpVector::from_indices(40, {0, 3, 9, 33});
    EXPECT_EQ(ops::vxm(ctx(), x, m), ops::mxv(ctx(), ops::transpose(ctx(), m), x));
}

// ---------------------------- masked multiply ----------------------------

TEST_F(MaskedMultiply, EqualsMultiplyThenFilter) {
    for (const auto seed : {70, 71, 72}) {
        const auto a = random_csr(30, 30, 0.12, seed);
        const auto b = random_csr(30, 30, 0.12, seed + 5);
        const auto mask = random_csr(30, 30, 0.25, seed + 9);
        const auto bt = ops::transpose(ctx(), b);
        const auto masked = ops::multiply_masked(ctx(), mask, a, bt);
        const auto filtered =
            ops::ewise_mult(ctx(), ops::multiply(ctx(), a, b), mask);
        EXPECT_EQ(masked, filtered) << seed;
    }
}

TEST_F(MaskedMultiply, ComplementEqualsMultiplyThenSubtract) {
    const auto a = random_csr(25, 25, 0.15, 80);
    const auto b = random_csr(25, 25, 0.15, 81);
    const auto mask = random_csr(25, 25, 0.3, 82);
    const auto bt = ops::transpose(ctx(), b);
    const auto masked = ops::multiply_masked(ctx(), mask, a, bt, /*complement=*/true);
    const auto expected = ops::ewise_diff(ctx(), ops::multiply(ctx(), a, b), mask);
    EXPECT_EQ(masked, expected);
}

TEST_F(MaskedMultiply, EmptyMaskGivesEmptyResult) {
    const auto a = random_csr(10, 10, 0.4, 83);
    const auto bt = ops::transpose(ctx(), a);
    EXPECT_EQ(ops::multiply_masked(ctx(), CsrMatrix{10, 10}, a, bt).nnz(), 0u);
}

TEST_F(MaskedMultiply, ShapeChecks) {
    const CsrMatrix a{3, 4}, bt{5, 4}, bad_mask{3, 4};
    EXPECT_THROW((void)ops::multiply_masked(ctx(), bad_mask, a, bt), Error);
    const CsrMatrix mask{3, 5};
    EXPECT_NO_THROW((void)ops::multiply_masked(ctx(), mask, a, bt));
}

TEST_F(MaskedMultiply, TriangleEdgeIdiom) {
    // C<A> = A x A over a symmetric adjacency marks edges on triangles.
    const auto adj = CsrMatrix::from_coords(
        4, 4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}, {2, 3}, {3, 2}});
    const auto on_triangle = ops::multiply_masked(ctx(), adj, adj, adj);
    EXPECT_TRUE(on_triangle.get(0, 1));
    EXPECT_TRUE(on_triangle.get(1, 2));
    EXPECT_TRUE(on_triangle.get(0, 2));
    EXPECT_FALSE(on_triangle.get(2, 3));  // the pendant edge
}

TEST_F(Structural, SequentialBackendAgreesEverywhere) {
    const auto a = random_csr(24, 24, 0.15, 48);
    const auto b = random_csr(4, 4, 0.4, 49);
    EXPECT_EQ(ops::kronecker(ctx(), b, a), ops::kronecker(seq_ctx(), b, a));
    EXPECT_EQ(ops::transpose(ctx(), a), ops::transpose(seq_ctx(), a));
    EXPECT_EQ(ops::submatrix(ctx(), a, 2, 2, 10, 10),
              ops::submatrix(seq_ctx(), a, 2, 2, 10, 10));
}

}  // namespace
}  // namespace spbla
