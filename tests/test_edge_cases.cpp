/// \file test_edge_cases.cpp
/// \brief Degenerate and adversarial inputs across the whole stack:
/// empty graphs, empty languages, single-vertex graphs, queries over
/// absent labels, self loops, maximal-density matrices.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algorithms/closure.hpp"
#include "cfpq/azimov.hpp"
#include "cfpq/cyk.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "cfpq/worklist.hpp"
#include "data/worstcase.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "rpq/engine.hpp"

namespace spbla {
namespace {

using testing::ctx;

TEST(EdgeCases, SingleVertexGraphEverywhere) {
    const auto g = data::LabeledGraph::from_edges(1, {{0, "a", 0}});  // self loop
    // RPQ: a+ from the loop reaches (0,0).
    EXPECT_TRUE(rpq::evaluate(ctx(), g, rpq::compile_query("a+")).get(0, 0));
    EXPECT_TRUE(rpq::evaluate_from(ctx(), g, rpq::compile_query("a+"), 0).get(0));
    // CFPQ: S -> a S | a.
    const auto grammar = cfpq::Grammar::parse("S -> a S | a\n");
    EXPECT_TRUE(cfpq::azimov_cfpq(ctx(), g, grammar).reachable().get(0, 0));
    EXPECT_TRUE(cfpq::tensor_cfpq(ctx(), g, grammar).reachable(grammar).get(0, 0));
    EXPECT_TRUE(cfpq::worklist_cfpq(g, grammar).get(0, 0));
}

TEST(EdgeCases, EdgelessGraph) {
    const data::LabeledGraph g{16};
    EXPECT_EQ(rpq::evaluate(ctx(), g, rpq::compile_query("a b*")).nnz(), 0u);
    // Nullable query still matches every vertex trivially.
    EXPECT_EQ(rpq::evaluate(ctx(), g, rpq::compile_query("a*")).nnz(), 16u);
    const auto grammar = cfpq::Grammar::parse("S -> a S b | a b\n");
    EXPECT_EQ(cfpq::azimov_cfpq(ctx(), g, grammar).reachable().nnz(), 0u);
    EXPECT_EQ(cfpq::tensor_cfpq(ctx(), g, grammar).reachable(grammar).nnz(), 0u);
}

TEST(EdgeCases, QueryOverAbsentLabels) {
    const auto g = data::make_path(5, "walk");
    EXPECT_EQ(rpq::evaluate(ctx(), g, rpq::compile_query("fly+")).nnz(), 0u);
    const auto grammar = cfpq::Grammar::parse("S -> fly S | fly\n");
    EXPECT_EQ(cfpq::azimov_cfpq(ctx(), g, grammar).reachable().nnz(), 0u);
    EXPECT_EQ(cfpq::tensor_cfpq(ctx(), g, grammar).reachable(grammar).nnz(), 0u);
    EXPECT_EQ(cfpq::worklist_cfpq(g, grammar).nnz(), 0u);
}

TEST(EdgeCases, EpsilonOnlyGrammar) {
    const auto g = data::make_path(4);
    const auto grammar = cfpq::Grammar::parse("S -> eps\n");
    const auto mtx = cfpq::azimov_cfpq(ctx(), g, grammar).reachable();
    EXPECT_EQ(mtx, Matrix::identity(4, ctx()));
    EXPECT_EQ(cfpq::tensor_cfpq(ctx(), g, grammar).reachable(grammar),
              Matrix::identity(4, ctx()));
    EXPECT_TRUE(cfpq::accepts(grammar, {}));
    EXPECT_FALSE(cfpq::accepts(grammar, std::vector<std::string>{"a"}));
}

TEST(EdgeCases, SelfLoopSaturatesStarQueries) {
    // A vertex with a self loop makes a* reach everything downstream at
    // every power.
    const auto g = data::LabeledGraph::from_edges(
        3, {{0, "a", 0}, {0, "a", 1}, {1, "a", 2}});
    const auto reach = rpq::evaluate(ctx(), g, rpq::compile_query("a+"));
    EXPECT_TRUE(reach.get(0, 0));
    EXPECT_TRUE(reach.get(0, 2));
    EXPECT_FALSE(reach.get(2, 0));
}

TEST(EdgeCases, FullDensityMatrixOps) {
    // All-ones square matrix: every op has a closed-form result.
    std::vector<Coord> coords;
    for (Index i = 0; i < 20; ++i) {
        for (Index j = 0; j < 20; ++j) coords.push_back({i, j});
    }
    const auto full = CsrMatrix::from_coords(20, 20, std::move(coords));
    EXPECT_EQ(ops::multiply(ctx(), full, full), full);
    EXPECT_EQ(ops::ewise_add(ctx(), full, full), full);
    EXPECT_EQ(ops::ewise_mult(ctx(), full, full), full);
    EXPECT_EQ(ops::ewise_diff(ctx(), full, full).nnz(), 0u);
    EXPECT_EQ(ops::transpose(ctx(), full), full);
    EXPECT_EQ(algorithms::transitive_closure(ctx(), Matrix{full, ctx()}).csr(), full);
}

TEST(EdgeCases, OneByOneMatrices) {
    const auto set = CsrMatrix::from_coords(1, 1, {{0, 0}});
    const CsrMatrix empty{1, 1};
    EXPECT_EQ(ops::multiply(ctx(), set, set), set);
    EXPECT_EQ(ops::multiply(ctx(), set, empty).nnz(), 0u);
    EXPECT_EQ(ops::kronecker(ctx(), set, set), set);
    EXPECT_EQ(ops::kronecker(ctx(), set, empty).nnz(), 0u);
    EXPECT_EQ(ops::transpose(ctx(), set), set);
}

TEST(EdgeCases, ZeroDimensionMatrices) {
    const CsrMatrix zero_rows{0, 5};
    const CsrMatrix zero_all{0, 0};
    EXPECT_EQ(ops::transpose(ctx(), zero_rows).nrows(), 5u);
    EXPECT_EQ(ops::transpose(ctx(), zero_rows).nnz(), 0u);
    EXPECT_EQ(ops::ewise_add(ctx(), zero_all, zero_all).nnz(), 0u);
    const CsrMatrix a{5, 0}, b{0, 7};
    const auto c = ops::multiply(ctx(), a, b);
    EXPECT_EQ(c.nrows(), 5u);
    EXPECT_EQ(c.ncols(), 7u);
    EXPECT_EQ(c.nnz(), 0u);
}

TEST(EdgeCases, GrammarWithUnproductiveNonterminal) {
    // U derives nothing; rules through U contribute no answers but must not
    // break any algorithm.
    const auto g = data::make_path(4);
    const auto grammar = cfpq::Grammar::parse("S -> a | U b\nU -> U a\n");
    const auto ref = cfpq::worklist_cfpq(g, grammar);
    EXPECT_EQ(ref.nnz(), 3u);  // just the a-edges
    EXPECT_EQ(cfpq::azimov_cfpq(ctx(), g, grammar).reachable(), ref);
    EXPECT_EQ(cfpq::tensor_cfpq(ctx(), g, grammar).reachable(grammar), ref);
}

TEST(EdgeCases, DeeplyNestedRegexCompiles) {
    std::string text = "a";
    for (int depth = 0; depth < 40; ++depth) text = "(" + text + ")*";
    const auto q = rpq::compile_query(text);
    EXPECT_TRUE(q.accepts(std::vector<std::string>{"a", "a"}));
    EXPECT_TRUE(q.accepts({}));
}

TEST(EdgeCases, LongCykWord) {
    const auto grammar = cfpq::Grammar::parse("S -> a S b | a b\n");
    const auto cnf = cfpq::to_cnf(grammar);
    std::vector<std::string> word;
    for (int i = 0; i < 24; ++i) word.push_back("a");
    for (int i = 0; i < 24; ++i) word.push_back("b");
    EXPECT_TRUE(cfpq::cyk_accepts(cnf, word));
    word.push_back("b");
    EXPECT_FALSE(cfpq::cyk_accepts(cnf, word));
}

TEST(EdgeCases, KroneckerOverflowDetected) {
    // 2^17 x 2^17 operands would overflow the 32-bit index space.
    const CsrMatrix big{1u << 17, 1u << 17};
    EXPECT_THROW((void)ops::kronecker(ctx(), big, big), Error);
}

}  // namespace
}  // namespace spbla
