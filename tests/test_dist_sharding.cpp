/// \file test_dist_sharding.cpp
/// \brief Differential shard-oracle harness for the multi-device layer.
///
/// Every sharded kernel, on every grid shape (1x1, 1xN, Nx1, 2x2, 3x3 and
/// ragged grids with sliver edge tiles), is cross-checked bit-exactly
/// against the single-device storage:: result, with tile-placement,
/// transfer-counter accounting and per-device leak checks on teardown.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "helpers.hpp"

// The harness drives the tile kernels directly; tests are a sanctioned
// import site for the private dist headers.
#include "dist/device_group.hpp"    // lint:allow(format-leak)
#include "dist/dist.hpp"
#include "dist/partition.hpp"       // lint:allow(format-leak)
#include "dist/sharded_matrix.hpp"  // lint:allow(format-leak)
#include "dist/sharded_ops.hpp"     // lint:allow(format-leak)
#include "spbla/spbla.h"
#include "storage/dispatch.hpp"

namespace dist = spbla::dist;
using spbla::Index;
using spbla::Matrix;
using spbla::SpVector;
using spbla::testing::ctx;
using spbla::testing::random_matrix;

namespace {

struct Grid {
    std::size_t rows;
    std::size_t cols;
};

/// The grid ladder every op is checked on: trivial, row/column strips,
/// square and a ragged 3x4 (37 and 29 do not divide evenly, so edge tiles
/// are slivers).
const std::vector<Grid> kGrids = {{1, 1}, {1, 4}, {4, 1}, {2, 2}, {3, 3}, {3, 4}};

dist::Partition uniform(const Matrix& m, const Grid& g) {
    return dist::Partition::uniform(m.nrows(), m.ncols(), g.rows, g.cols);
}

/// Conformal partitions for C = A x B on one grid spec: B's row splits must
/// equal A's column splits.
struct MultiplyParts {
    dist::Partition pa;
    dist::Partition pb;
};

MultiplyParts multiply_parts(const Matrix& a, const Matrix& b, const Grid& g) {
    dist::Partition pa = uniform(a, g);
    const auto inner = pa.col_splits();
    dist::Partition pbc = dist::Partition::uniform(b.nrows(), b.ncols(), g.cols, g.rows);
    const auto bcols = pbc.col_splits();
    return MultiplyParts{std::move(pa),
                         dist::Partition{{inner.begin(), inner.end()},
                                         {bcols.begin(), bcols.end()}}};
}

class DistSharding : public spbla::testing::CheckedContext {};

}  // namespace

// ---------------------------------------------------------------------------
// Partition geometry
// ---------------------------------------------------------------------------

TEST(DistPartition, UniformCoversExtent) {
    const auto p = dist::Partition::uniform(37, 29, 3, 4);
    EXPECT_EQ(p.grid_rows(), 3u);
    EXPECT_EQ(p.grid_cols(), 4u);
    EXPECT_EQ(p.nrows(), 37u);
    EXPECT_EQ(p.ncols(), 29u);
    Index rows = 0;
    for (std::size_t i = 0; i < p.grid_rows(); ++i) rows += p.tile_nrows(i);
    EXPECT_EQ(rows, 37u);
    Index cols = 0;
    for (std::size_t j = 0; j < p.grid_cols(); ++j) cols += p.tile_ncols(j);
    EXPECT_EQ(cols, 29u);
    // Near-equal: sizes differ by at most one.
    EXPECT_EQ(p.tile_nrows(0) - p.tile_nrows(2), 1u);  // 13, 12, 12
    for (Index r = 0; r < 37; ++r) {
        const std::size_t i = p.tile_of_row(r);
        EXPECT_GE(r, p.row_begin(i));
        EXPECT_LT(r, p.row_begin(i) + p.tile_nrows(i));
    }
    for (Index c = 0; c < 29; ++c) {
        const std::size_t j = p.tile_of_col(c);
        EXPECT_GE(c, p.col_begin(j));
        EXPECT_LT(c, p.col_begin(j) + p.tile_ncols(j));
    }
}

TEST(DistPartition, GridLargerThanExtentYieldsEmptyTiles) {
    const auto p = dist::Partition::uniform(2, 3, 5, 5);
    EXPECT_EQ(p.grid_rows(), 5u);
    EXPECT_EQ(p.nrows(), 2u);
    Index total = 0;
    for (std::size_t i = 0; i < 5; ++i) total += p.tile_nrows(i);
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(p.tile_nrows(4), 0u);  // trailing slivers are empty
}

TEST(DistPartition, TransposedSwapsSplits) {
    const auto p = dist::Partition::uniform(10, 6, 2, 3);
    const auto t = p.transposed();
    EXPECT_EQ(t.nrows(), 6u);
    EXPECT_EQ(t.ncols(), 10u);
    EXPECT_EQ(t.grid_rows(), 3u);
    EXPECT_EQ(t.grid_cols(), 2u);
    EXPECT_TRUE(std::ranges::equal(t.row_splits(), p.col_splits()));
}

TEST(DistPartition, ChooseSquareMatrixGetsIdenticalSplits) {
    const auto p = dist::choose_partition(512, 512, 40000, 4, 1 << 14);
    EXPECT_TRUE(std::ranges::equal(p.row_splits(), p.col_splits()));
    EXPECT_GE(p.tiles(), 4u);  // at least one tile per device
}

TEST(DistPartition, ChooseRespectsTinyMatrices) {
    const auto p = dist::choose_partition(3, 2, 4, 8, 1 << 20);
    EXPECT_LE(p.grid_rows(), 3u);
    EXPECT_LE(p.grid_cols(), 2u);
}

// ---------------------------------------------------------------------------
// Scatter / gather and placement
// ---------------------------------------------------------------------------

TEST_F(DistSharding, GatherRoundTripsOnEveryGrid) {
    const Matrix m = random_matrix(37, 29, 0.12, 77);
    dist::DeviceGroup group{3};
    for (const Grid& g : kGrids) {
        const dist::ShardedMatrix shard{group, m, uniform(m, g)};
        EXPECT_EQ(shard.nnz(), m.nnz());
        EXPECT_TRUE(shard.gather(ctx()) == m)
            << "round trip failed on grid " << g.rows << "x" << g.cols;
    }
    EXPECT_TRUE(group.balanced()) << group.leak_report();
}

TEST_F(DistSharding, EmptyMatrixRoundTrips) {
    const Matrix m{17, 23, ctx()};
    dist::DeviceGroup group{2};
    const dist::ShardedMatrix shard{group, m, uniform(m, {2, 2})};
    EXPECT_EQ(shard.nnz(), 0u);
    EXPECT_TRUE(shard.gather(ctx()) == m);
}

TEST_F(DistSharding, RoundRobinPlacementCyclesDevices) {
    const Matrix m = random_matrix(24, 24, 0.2, 3);
    dist::DeviceGroup group{3};
    const dist::ShardedMatrix shard{group, m, uniform(m, {3, 3}),
                                    dist::Placement::RoundRobin};
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(shard.owner(i, j), (i * 3 + j) % 3);
        }
    }
}

TEST_F(DistSharding, LoadBalancedPlacementSpreadsWeight) {
    // One dense row-block dominates; LPT must not co-locate the two heavy
    // tiles while a device sits idle.
    std::vector<spbla::Coord> coords;
    for (Index r = 0; r < 8; ++r) {
        for (Index c = 0; c < 32; ++c) coords.push_back({r, c});
    }
    const Matrix m = Matrix::from_coords(32, 32, coords, ctx());
    dist::DeviceGroup group{2};
    const dist::ShardedMatrix shard{group, m, uniform(m, {2, 2}),
                                    dist::Placement::LoadBalanced};
    // Heavy tiles are (0,0) and (0,1); they must land on different devices.
    EXPECT_NE(shard.owner(0, 0), shard.owner(0, 1));
}

// ---------------------------------------------------------------------------
// Shard-oracle: every op on every grid vs single-device storage::
// ---------------------------------------------------------------------------

TEST_F(DistSharding, MultiplyMatchesSingleDeviceOnEveryGrid) {
    const Matrix a = random_matrix(37, 29, 0.15, 101);
    const Matrix b = random_matrix(29, 41, 0.15, 102);
    const Matrix want = spbla::storage::multiply(ctx(), a, b);
    dist::DeviceGroup group{3};
    for (const Grid& g : kGrids) {
        auto [pa, pb] = multiply_parts(a, b, g);
        const dist::ShardedMatrix sa{group, a, std::move(pa)};
        const dist::ShardedMatrix sb{group, b, std::move(pb)};
        EXPECT_TRUE(dist::sharded_multiply(ctx(), sa, sb) == want)
            << "multiply mismatch on grid " << g.rows << "x" << g.cols;
    }
    EXPECT_TRUE(group.balanced()) << group.leak_report();
}

TEST_F(DistSharding, MultiplyAddAccumulatesOnEveryGrid) {
    const Matrix a = random_matrix(26, 31, 0.18, 201);
    const Matrix b = random_matrix(31, 22, 0.18, 202);
    const Matrix c = random_matrix(26, 22, 0.08, 203);
    const Matrix want = spbla::storage::multiply_add(ctx(), c, a, b);
    dist::DeviceGroup group{3};
    for (const Grid& g : kGrids) {
        auto [pa, pb] = multiply_parts(a, b, g);
        const auto rs = pa.row_splits();
        const auto cs = pb.col_splits();
        dist::Partition pc{{rs.begin(), rs.end()}, {cs.begin(), cs.end()}};
        const dist::ShardedMatrix sa{group, a, std::move(pa)};
        const dist::ShardedMatrix sb{group, b, std::move(pb)};
        const dist::ShardedMatrix sc{group, c, std::move(pc)};
        EXPECT_TRUE(dist::sharded_multiply(ctx(), sa, sb, &sc) == want)
            << "multiply_add mismatch on grid " << g.rows << "x" << g.cols;
    }
}

TEST_F(DistSharding, MaskedMultiplyMatchesBothModes) {
    const Matrix a = random_matrix(24, 30, 0.2, 301);
    const Matrix b = random_matrix(30, 27, 0.2, 302);
    const Matrix bt = spbla::storage::transpose(ctx(), b);
    const Matrix mask = random_matrix(24, 27, 0.25, 303);
    dist::DeviceGroup group{3};
    for (const bool complement : {false, true}) {
        const Matrix want =
            spbla::storage::multiply_masked(ctx(), mask, a, bt, complement);
        for (const Grid& g : kGrids) {
            const dist::Partition pm = uniform(mask, g);
            const dist::Partition pa_plain = uniform(a, g);
            const auto mr = pm.row_splits();
            const auto mc = pm.col_splits();
            const auto ac = pa_plain.col_splits();
            dist::Partition pa{{mr.begin(), mr.end()}, {ac.begin(), ac.end()}};
            dist::Partition pbt{{mc.begin(), mc.end()}, {ac.begin(), ac.end()}};
            const dist::ShardedMatrix sm{group, mask, pm};
            const dist::ShardedMatrix sa{group, a, std::move(pa)};
            const dist::ShardedMatrix sbt{group, bt, std::move(pbt)};
            EXPECT_TRUE(dist::sharded_multiply_masked(ctx(), sm, sa, sbt, complement) ==
                        want)
                << "masked mismatch (complement=" << complement << ") on grid "
                << g.rows << "x" << g.cols;
        }
    }
}

TEST_F(DistSharding, EwiseMatchesOnEveryGrid) {
    const Matrix a = random_matrix(37, 29, 0.15, 401);
    const Matrix b = random_matrix(37, 29, 0.15, 402);
    const Matrix want_or = spbla::storage::ewise_add(ctx(), a, b);
    const Matrix want_and = spbla::storage::ewise_mult(ctx(), a, b);
    dist::DeviceGroup group{3};
    for (const Grid& g : kGrids) {
        const dist::Partition p = uniform(a, g);
        const dist::ShardedMatrix sa{group, a, p};
        const dist::ShardedMatrix sb{group, b, p};
        EXPECT_TRUE(dist::sharded_ewise_add(ctx(), sa, sb) == want_or);
        EXPECT_TRUE(dist::sharded_ewise_mult(ctx(), sa, sb) == want_and);
    }
}

TEST_F(DistSharding, KroneckerMatchesOnEveryGrid) {
    const Matrix a = random_matrix(9, 7, 0.3, 501);
    const Matrix b = random_matrix(5, 6, 0.3, 502);
    const Matrix want = spbla::storage::kronecker(ctx(), a, b);
    dist::DeviceGroup group{3};
    for (const Grid& g : kGrids) {
        const dist::ShardedMatrix sa{group, a, uniform(a, g)};
        EXPECT_TRUE(dist::sharded_kronecker(ctx(), sa, b) == want)
            << "kronecker mismatch on grid " << g.rows << "x" << g.cols;
    }
}

TEST_F(DistSharding, TransposeMatchesOnEveryGrid) {
    const Matrix a = random_matrix(37, 29, 0.15, 601);
    const Matrix want = spbla::storage::transpose(ctx(), a);
    dist::DeviceGroup group{3};
    for (const Grid& g : kGrids) {
        const dist::ShardedMatrix sa{group, a, uniform(a, g)};
        EXPECT_TRUE(dist::sharded_transpose(ctx(), sa) == want);
    }
}

TEST_F(DistSharding, ReduceAndMxvMatchOnEveryGrid) {
    const Matrix a = random_matrix(37, 29, 0.15, 701);
    std::vector<Index> set_cols;
    for (Index c = 0; c < 29; c += 3) set_cols.push_back(c);
    const SpVector x = SpVector::from_indices(29, set_cols);
    const SpVector want_reduce = spbla::storage::reduce_to_column(ctx(), a);
    const SpVector want_mxv = spbla::storage::mxv(ctx(), a, x);
    dist::DeviceGroup group{3};
    for (const Grid& g : kGrids) {
        const dist::ShardedMatrix sa{group, a, uniform(a, g)};
        const SpVector got_reduce = dist::sharded_reduce_to_column(ctx(), sa);
        const SpVector got_mxv = dist::sharded_mxv(ctx(), sa, x);
        EXPECT_TRUE(std::ranges::equal(got_reduce.indices(), want_reduce.indices()));
        EXPECT_TRUE(std::ranges::equal(got_mxv.indices(), want_mxv.indices()));
    }
}

TEST_F(DistSharding, SingleRowAndColumnShards) {
    // 1xN and Nx1 matrices on strip grids: every tile is a sliver.
    const Matrix row = random_matrix(1, 40, 0.4, 801);
    const Matrix col = random_matrix(40, 1, 0.4, 802);
    dist::DeviceGroup group{4};
    const dist::ShardedMatrix srow{group, row, uniform(row, {1, 4})};
    const dist::ShardedMatrix scol{group, col, uniform(col, {4, 1})};
    EXPECT_TRUE(srow.gather(ctx()) == row);
    EXPECT_TRUE(scol.gather(ctx()) == col);
    const Matrix want = spbla::storage::multiply(ctx(), col, row);
    auto [pa, pb] = multiply_parts(col, row, {4, 1});
    const dist::ShardedMatrix sa{group, col, std::move(pa)};
    const dist::ShardedMatrix sb{group, row, std::move(pb)};
    EXPECT_TRUE(dist::sharded_multiply(ctx(), sa, sb) == want);
}

// ---------------------------------------------------------------------------
// Transfer accounting and leak checks
// ---------------------------------------------------------------------------

TEST_F(DistSharding, SingleDeviceMovesNoTiles) {
    const Matrix a = random_matrix(32, 32, 0.2, 901);
    dist::DeviceGroup group{1};
    dist::reset_stats();
    const dist::ShardedMatrix sa{group, a, uniform(a, {3, 3})};
    const Matrix r = dist::sharded_multiply(ctx(), sa, sa);
    EXPECT_GT(r.nnz(), 0u);
    EXPECT_EQ(dist::stats().tile_transfers.load(), 0u);
    EXPECT_EQ(dist::stats().transfer_bytes.load(), 0u);
    EXPECT_EQ(dist::stats().tile_steals.load(), 0u);  // nothing to steal from
    EXPECT_GT(dist::stats().tiles_processed.load(), 0u);
}

TEST_F(DistSharding, MultiDeviceChargesTransfers) {
    const Matrix a = random_matrix(48, 48, 0.2, 902);
    dist::DeviceGroup group{4};
    dist::reset_stats();
    const dist::ShardedMatrix sa{group, a, uniform(a, {4, 4})};
    (void)dist::sharded_multiply(ctx(), sa, sa);
    const auto transfers = dist::stats().tile_transfers.load();
    const auto bytes = dist::stats().transfer_bytes.load();
    // A 4x4 SUMMA product over 4 devices cannot keep every (i,k)x(k,j) pair
    // device-local.
    EXPECT_GT(transfers, 0u);
    // Every transferred CSR tile moves at least its offsets array.
    EXPECT_GE(bytes, transfers * sizeof(Index));
    EXPECT_EQ(dist::stats().tiles_processed.load(), 16u + 16u);  // scatter + compute
}

TEST_F(DistSharding, DevicesBalancedAfterCompute) {
    dist::DeviceGroup group{3};
    {
        const Matrix a = random_matrix(30, 30, 0.2, 903);
        const dist::ShardedMatrix sa{group, a, uniform(a, {3, 3})};
        (void)dist::sharded_multiply(ctx(), sa, sa);
        (void)dist::sharded_transpose(ctx(), sa);
        (void)dist::sharded_kronecker(ctx(), sa, a);
    }
    // All shards destroyed: every per-device tracker must be back to zero.
    EXPECT_TRUE(group.balanced()) << group.leak_report();
    const auto busy = group.busy_ns();
    EXPECT_EQ(busy.size(), 3u);
}

// ---------------------------------------------------------------------------
// Dispatcher routing + shard-cache invalidation (the mutation-epoch contract)
// ---------------------------------------------------------------------------

TEST_F(DistSharding, ScopedHintForcesAndBlocksRouting) {
    const Matrix a = random_matrix(40, 40, 0.1, 1001);
    const Matrix want = [&] {
        const dist::ScopedHint local{dist::Hint::ForceLocal};
        return spbla::storage::multiply(ctx(), a, a);
    }();
    dist::reset_stats();
    {
        const dist::ScopedHint force{dist::Hint::ForceShard};
        const Matrix got = spbla::storage::multiply(ctx(), a, a);
        EXPECT_TRUE(got == want);
    }
    EXPECT_EQ(dist::stats().sharded_ops.load(), 1u);
    {
        const dist::ScopedHint local{dist::Hint::ForceLocal};
        (void)spbla::storage::multiply(ctx(), a, a);
    }
    EXPECT_EQ(dist::stats().sharded_ops.load(), 1u);  // unchanged
    dist::disable();
}

TEST_F(DistSharding, AutoRoutingHonoursThresholds) {
    dist::Config cfg;
    cfg.devices = 2;
    cfg.min_dim = 32;
    cfg.min_nnz = 1;  // any nonzero operand routes
    dist::configure(cfg);
    dist::reset_stats();
    const Matrix big = random_matrix(64, 64, 0.1, 1101);
    (void)spbla::storage::transpose(ctx(), big);
    EXPECT_EQ(dist::stats().sharded_ops.load(), 1u);
    const Matrix small = random_matrix(8, 8, 0.3, 1102);
    (void)spbla::storage::transpose(ctx(), small);
    EXPECT_EQ(dist::stats().sharded_ops.load(), 1u);  // below min_dim: local
    dist::disable();
    dist::reset_stats();
    (void)spbla::storage::transpose(ctx(), big);
    EXPECT_EQ(dist::stats().sharded_ops.load(), 0u);  // disabled again
}

TEST_F(DistSharding, RoutedFixpointStepMatchesLocal) {
    // The closure drivers' inner step C |= A x B must survive transparent
    // sharding byte-for-byte.
    const Matrix a = random_matrix(50, 50, 0.08, 1201);
    Matrix c_local = a;
    Matrix c_dist = a;
    {
        const dist::ScopedHint local{dist::Hint::ForceLocal};
        c_local.multiply_add(a, a);
    }
    {
        const dist::ScopedHint force{dist::Hint::ForceShard};
        c_dist.multiply_add(a, a);
    }
    EXPECT_TRUE(c_local == c_dist);
    dist::disable();
}

TEST_F(DistSharding, MutationInstallsFreshVersion) {
    Matrix a = random_matrix(20, 20, 0.2, 1301);
    const auto v0 = a.version();
    EXPECT_NE(v0, 0u);
    const Matrix copy = a;
    EXPECT_EQ(copy.version(), v0);  // same content, same stamp
    a += Matrix::identity(20, ctx());
    EXPECT_NE(a.version(), v0);     // mutation re-stamps
    EXPECT_EQ(copy.version(), v0);  // the copy keeps the old content
    Matrix moved = std::move(a);
    EXPECT_NE(moved.version(), v0);
    EXPECT_EQ(a.version(), 0u);  // NOLINT(bugprone-use-after-move): contract
}

TEST_F(DistSharding, ShardObservesSourceMutation) {
    Matrix a = random_matrix(24, 24, 0.2, 1401);
    dist::DeviceGroup group{2};
    const dist::ShardedMatrix shard{group, a, uniform(a, {2, 2})};
    EXPECT_TRUE(shard.in_sync_with(a));
    a += Matrix::identity(24, ctx());
    // The sharding must know it no longer reflects the handle: reusing its
    // tiles for the mutated content would silently compute on stale cells.
    EXPECT_FALSE(shard.in_sync_with(a));
    EXPECT_TRUE(shard.gather(ctx()) != a);  // tiles hold the old content
}

TEST_F(DistSharding, ShardCacheInvalidatesOnMutation) {
    dist::Config cfg;
    cfg.devices = 2;
    cfg.grid_rows = 2;
    cfg.grid_cols = 2;
    dist::configure(cfg);
    dist::reset_stats();
    Matrix a = random_matrix(40, 40, 0.12, 1501);
    const Matrix r1 = [&] {
        const dist::ScopedHint force{dist::Hint::ForceShard};
        return spbla::storage::multiply(ctx(), a, a);
    }();
    // Both sides of A x A share one cached sharding.
    EXPECT_EQ(dist::stats().shard_builds.load(), 1u);
    EXPECT_EQ(dist::stats().shard_cache_hits.load(), 1u);

    {
        const dist::ScopedHint force{dist::Hint::ForceShard};
        (void)spbla::storage::multiply(ctx(), a, a);  // warm: no new builds
    }
    EXPECT_EQ(dist::stats().shard_builds.load(), 1u);
    EXPECT_EQ(dist::stats().shard_cache_hits.load(), 3u);

    a += Matrix::identity(40, ctx());  // mutate through the facade (local)
    const Matrix r2 = [&] {
        const dist::ScopedHint force{dist::Hint::ForceShard};
        return spbla::storage::multiply(ctx(), a, a);
    }();
    // The stale sharding must NOT be reused: a fresh build is required...
    EXPECT_EQ(dist::stats().shard_builds.load(), 2u);
    // ...and the result must match a from-scratch single-device compute.
    const Matrix want = [&] {
        const dist::ScopedHint local{dist::Hint::ForceLocal};
        return spbla::storage::multiply(ctx(), a, a);
    }();
    EXPECT_TRUE(r2 == want);
    EXPECT_TRUE(r2 != r1);
    dist::disable();
}

TEST_F(DistSharding, CApiDistConfigureRoutes) {
    // The C knob drives the same engine; exercised here without the full C
    // API lifecycle (matrix handles are covered by test_capi).
    spbla_DistConfig cfg{};
    cfg.n_devices = 2;
    cfg.min_dim = 16;
    cfg.min_nnz = 1;
    ASSERT_EQ(spbla_DistConfigure(&cfg), SPBLA_STATUS_SUCCESS);
    EXPECT_TRUE(dist::enabled());
    dist::reset_stats();
    const Matrix a = random_matrix(32, 32, 0.15, 1601);
    (void)spbla::storage::transpose(ctx(), a);
    EXPECT_EQ(dist::stats().sharded_ops.load(), 1u);
    ASSERT_EQ(spbla_DistConfigure(nullptr), SPBLA_STATUS_SUCCESS);
    EXPECT_FALSE(dist::enabled());
}
