#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"

namespace spbla {
namespace {

using testing::random_csr;

// --------------------------------- COO -----------------------------------

TEST(Coo, EmptyMatrix) {
    CooMatrix m{3, 4};
    EXPECT_EQ(m.nrows(), 3u);
    EXPECT_EQ(m.ncols(), 4u);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_TRUE(m.empty());
    m.validate();
}

TEST(Coo, FromCoordsSortsAndDeduplicates) {
    const auto m = CooMatrix::from_coords(
        3, 3, {{2, 1}, {0, 2}, {2, 1}, {0, 0}, {0, 2}});
    EXPECT_EQ(m.nnz(), 3u);
    EXPECT_EQ(m.to_coords(), (std::vector<Coord>{{0, 0}, {0, 2}, {2, 1}}));
    m.validate();
}

TEST(Coo, FromCoordsRejectsOutOfRange) {
    EXPECT_THROW(CooMatrix::from_coords(2, 2, {{2, 0}}), Error);
    EXPECT_THROW(CooMatrix::from_coords(2, 2, {{0, 2}}), Error);
}

TEST(Coo, GetFindsPresentAndAbsentCells) {
    const auto m = CooMatrix::from_coords(4, 4, {{1, 2}, {3, 0}, {1, 0}});
    EXPECT_TRUE(m.get(1, 2));
    EXPECT_TRUE(m.get(3, 0));
    EXPECT_TRUE(m.get(1, 0));
    EXPECT_FALSE(m.get(0, 0));
    EXPECT_FALSE(m.get(1, 1));
    EXPECT_THROW((void)m.get(4, 0), Error);
}

TEST(Coo, DeviceBytesFormula) {
    const auto m = CooMatrix::from_coords(10, 10, {{0, 1}, {2, 3}, {4, 5}});
    EXPECT_EQ(m.device_bytes(), 2 * 3 * sizeof(Index));
}

TEST(Coo, EqualityComparesShapeAndContent) {
    const auto a = CooMatrix::from_coords(2, 2, {{0, 1}});
    const auto b = CooMatrix::from_coords(2, 2, {{0, 1}});
    const auto c = CooMatrix::from_coords(2, 2, {{1, 0}});
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(Coo, ValidateCatchesUnsortedInput) {
    EXPECT_THROW(
        CooMatrix::from_sorted(2, 2, {1, 0}, {0, 0}).validate(), Error);
}

// --------------------------------- CSR -----------------------------------

TEST(Csr, EmptyMatrix) {
    CsrMatrix m{5, 7};
    EXPECT_EQ(m.nrows(), 5u);
    EXPECT_EQ(m.ncols(), 7u);
    EXPECT_EQ(m.nnz(), 0u);
    EXPECT_EQ(m.row_offsets().size(), 6u);
    m.validate();
}

TEST(Csr, ZeroByZeroMatrix) {
    CsrMatrix m{0, 0};
    EXPECT_EQ(m.nnz(), 0u);
    m.validate();
}

TEST(Csr, FromCoordsBuildsRowStructure) {
    const auto m = CsrMatrix::from_coords(3, 4, {{1, 3}, {0, 1}, {1, 0}, {0, 2}});
    EXPECT_EQ(m.nnz(), 4u);
    EXPECT_EQ(m.row_nnz(0), 2u);
    EXPECT_EQ(m.row_nnz(1), 2u);
    EXPECT_EQ(m.row_nnz(2), 0u);
    const auto r0 = m.row(0);
    EXPECT_EQ(std::vector<Index>(r0.begin(), r0.end()), (std::vector<Index>{1, 2}));
    const auto r1 = m.row(1);
    EXPECT_EQ(std::vector<Index>(r1.begin(), r1.end()), (std::vector<Index>{0, 3}));
    m.validate();
}

TEST(Csr, DuplicatesCollapse) {
    const auto m = CsrMatrix::from_coords(2, 2, {{0, 0}, {0, 0}, {1, 1}, {1, 1}});
    EXPECT_EQ(m.nnz(), 2u);
}

TEST(Csr, Identity) {
    const auto m = CsrMatrix::identity(4);
    EXPECT_EQ(m.nnz(), 4u);
    for (Index i = 0; i < 4; ++i) {
        EXPECT_TRUE(m.get(i, i));
        for (Index j = 0; j < 4; ++j) {
            if (i != j) {
                EXPECT_FALSE(m.get(i, j));
            }
        }
    }
    m.validate();
}

TEST(Csr, GetOutOfRangeThrows) {
    const auto m = CsrMatrix::identity(2);
    EXPECT_THROW((void)m.get(2, 0), Error);
    EXPECT_THROW((void)m.get(0, 2), Error);
}

TEST(Csr, DeviceBytesFormulaMatchesPaper) {
    // Paper: (m + NNZ(M)) * sizeof(IndexType) — plus the off-by-one slot of
    // the offsets array.
    const auto m = CsrMatrix::from_coords(10, 10, {{0, 1}, {2, 3}, {4, 5}});
    EXPECT_EQ(m.device_bytes(), (10 + 1 + 3) * sizeof(Index));
}

TEST(Csr, ToCoordsRoundTrips) {
    const std::vector<Coord> coords{{0, 1}, {2, 0}, {2, 3}};
    const auto m = CsrMatrix::from_coords(3, 4, coords);
    EXPECT_EQ(m.to_coords(), coords);
}

TEST(Csr, FromRawValidatesInDebug) {
#ifndef NDEBUG
    // Bad offsets: do not sum to nnz.
    EXPECT_THROW(CsrMatrix::from_raw(2, 2, {0, 1, 3}, {0, 1}), Error);
#else
    GTEST_SKIP() << "validation only runs in debug builds";
#endif
}

// -------------------------------- dense ----------------------------------

TEST(Dense, SetGetClear) {
    DenseMatrix m{3, 70};  // spans multiple 64-bit words per row
    m.set(1, 65);
    EXPECT_TRUE(m.get(1, 65));
    EXPECT_FALSE(m.get(1, 64));
    m.set(1, 65, false);
    EXPECT_FALSE(m.get(1, 65));
}

TEST(Dense, NnzCountsBits) {
    DenseMatrix m{2, 100};
    m.set(0, 0);
    m.set(0, 99);
    m.set(1, 50);
    EXPECT_EQ(m.nnz(), 3u);
}

TEST(Dense, MultiplyMatchesManual) {
    DenseMatrix a{2, 3}, b{3, 2};
    a.set(0, 1);  // row 0 selects b row 1
    b.set(1, 0);
    const auto c = a.multiply(b);
    EXPECT_TRUE(c.get(0, 0));
    EXPECT_EQ(c.nnz(), 1u);
}

TEST(Dense, KroneckerSmall) {
    DenseMatrix a{2, 2}, b{2, 2};
    a.set(0, 1);
    b.set(1, 0);
    const auto k = a.kronecker(b);
    EXPECT_EQ(k.nrows(), 4u);
    EXPECT_EQ(k.ncols(), 4u);
    EXPECT_TRUE(k.get(0 * 2 + 1, 1 * 2 + 0));
    EXPECT_EQ(k.nnz(), 1u);
}

TEST(Dense, TransposeInvolution) {
    DenseMatrix m{3, 5};
    m.set(0, 4);
    m.set(2, 1);
    const auto t = m.transpose();
    EXPECT_TRUE(t.get(4, 0));
    EXPECT_TRUE(t.get(1, 2));
    EXPECT_EQ(t.transpose(), m);
}

// ----------------------------- conversions -------------------------------

TEST(Convert, CooCsrRoundTrip) {
    const auto coo = CooMatrix::from_coords(5, 6, {{0, 5}, {4, 0}, {2, 2}, {2, 4}});
    const auto csr = to_csr(coo);
    csr.validate();
    EXPECT_EQ(to_coo(csr), coo);
}

TEST(Convert, DenseRoundTrip) {
    DenseMatrix d{4, 4};
    d.set(0, 0);
    d.set(3, 1);
    d.set(1, 3);
    EXPECT_EQ(to_dense(to_csr(d)), d);
    EXPECT_EQ(to_dense(to_coo(d)), d);
}

TEST(Convert, EmptyMatrixRoundTrip) {
    const CooMatrix coo{4, 4};
    EXPECT_EQ(to_coo(to_csr(coo)), coo);
}

// Parameterized conversion round-trip over shapes and densities.
struct ShapeDensity {
    Index nrows, ncols;
    double density;
};

class ConversionSweep : public ::testing::TestWithParam<ShapeDensity> {};

TEST_P(ConversionSweep, RoundTripsPreserveContent) {
    const auto [nrows, ncols, density] = GetParam();
    const auto csr = random_csr(nrows, ncols, density, 1234 + nrows * 7 + ncols);
    csr.validate();
    const auto coo = to_coo(csr);
    coo.validate();
    EXPECT_EQ(to_csr(coo), csr);
    EXPECT_EQ(to_csr(to_dense(csr)), csr);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConversionSweep,
    ::testing::Values(ShapeDensity{1, 1, 1.0}, ShapeDensity{1, 100, 0.1},
                      ShapeDensity{100, 1, 0.1}, ShapeDensity{17, 31, 0.05},
                      ShapeDensity{64, 64, 0.02}, ShapeDensity{64, 64, 0.5},
                      ShapeDensity{200, 10, 0.3}, ShapeDensity{10, 200, 0.3}));

// ------------------------------- spvector --------------------------------

TEST(SpVector, FromIndicesSortsAndDedups) {
    const auto v = SpVector::from_indices(10, {5, 1, 5, 9, 1});
    EXPECT_EQ(v.nnz(), 3u);
    EXPECT_TRUE(v.get(1));
    EXPECT_TRUE(v.get(5));
    EXPECT_TRUE(v.get(9));
    EXPECT_FALSE(v.get(0));
    v.validate();
}

TEST(SpVector, OutOfRangeRejected) {
    EXPECT_THROW(SpVector::from_indices(3, {3}), Error);
    const auto v = SpVector::from_indices(3, {0});
    EXPECT_THROW((void)v.get(3), Error);
}

TEST(SpVector, EwiseOrAndAnd) {
    const auto a = SpVector::from_indices(8, {1, 3, 5});
    const auto b = SpVector::from_indices(8, {3, 4, 5, 7});
    const auto o = a.ewise_or(b);
    const auto n = a.ewise_and(b);
    EXPECT_EQ(o, SpVector::from_indices(8, {1, 3, 4, 5, 7}));
    EXPECT_EQ(n, SpVector::from_indices(8, {3, 5}));
}

TEST(SpVector, MismatchedSizesThrow) {
    const auto a = SpVector::from_indices(4, {0});
    const auto b = SpVector::from_indices(5, {0});
    EXPECT_THROW((void)a.ewise_or(b), Error);
    EXPECT_THROW((void)a.ewise_and(b), Error);
}

// -------------------------------- status ---------------------------------

TEST(Status, NamesAreStable) {
    EXPECT_STREQ(status_name(Status::Ok), "Ok");
    EXPECT_STREQ(status_name(Status::DimensionMismatch), "DimensionMismatch");
}

TEST(Status, ErrorCarriesStatusAndMessage) {
    try {
        check(false, Status::OutOfRange, "boom");
        FAIL() << "check did not throw";
    } catch (const Error& e) {
        EXPECT_EQ(e.status(), Status::OutOfRange);
        EXPECT_STREQ(e.what(), "boom");
    }
}

}  // namespace
}  // namespace spbla
