#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfpq/cnf.hpp"
#include "cfpq/cyk.hpp"
#include "cfpq/grammar.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/rsm.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace spbla::cfpq {
namespace {

std::vector<std::string> word(std::initializer_list<const char*> tokens) {
    std::vector<std::string> out;
    for (const auto* t : tokens) out.emplace_back(t);
    return out;
}

TEST(Grammar, ParseBasics) {
    const auto g = Grammar::parse("S -> a S b | a b\n");
    EXPECT_EQ(g.start_symbol(), "S");
    EXPECT_EQ(g.nonterminals(), (std::vector<std::string>{"S"}));
    EXPECT_EQ(g.terminals(), (std::vector<std::string>{"a", "b"}));
    EXPECT_TRUE(g.is_nonterminal("S"));
    EXPECT_FALSE(g.is_nonterminal("a"));
}

TEST(Grammar, ParseSkipsCommentsAndBlanks) {
    const auto g = Grammar::parse("# header\n\nS -> a\n  # tail\n");
    EXPECT_EQ(g.rules().size(), 1u);
}

TEST(Grammar, MultiRuleNonterminals) {
    const auto g = Grammar::parse("S -> a V\nV -> b\nV -> c\n");
    EXPECT_EQ(g.nonterminals(), (std::vector<std::string>{"S", "V"}));
    // combined_rhs of V is b | c.
    EXPECT_TRUE(rpq::matches(*g.combined_rhs("V"), word({"b"})));
    EXPECT_TRUE(rpq::matches(*g.combined_rhs("V"), word({"c"})));
    EXPECT_FALSE(rpq::matches(*g.combined_rhs("V"), word({"a"})));
}

TEST(Grammar, BadInputsThrow) {
    EXPECT_THROW((void)Grammar::parse(""), Error);
    EXPECT_THROW((void)Grammar::parse("S a b\n"), Error);      // no arrow
    EXPECT_THROW((void)Grammar::parse("V -> a\n", "S"), Error);  // no start rule
}

TEST(Cnf, DyckOneGrammar) {
    const auto g = Grammar::parse("S -> a S b | a b\n");
    const auto cnf = to_cnf(g);
    EXPECT_FALSE(cnf.start_nullable);
    EXPECT_TRUE(cyk_accepts(cnf, word({"a", "b"})));
    EXPECT_TRUE(cyk_accepts(cnf, word({"a", "a", "b", "b"})));
    EXPECT_FALSE(cyk_accepts(cnf, word({"a", "b", "a", "b"})));
    EXPECT_FALSE(cyk_accepts(cnf, word({"a"})));
    EXPECT_FALSE(cyk_accepts(cnf, {}));
}

TEST(Cnf, NullableStartDetected) {
    const auto g = Grammar::parse("S -> a S | eps\n");
    const auto cnf = to_cnf(g);
    EXPECT_TRUE(cnf.start_nullable);
    EXPECT_TRUE(cyk_accepts(cnf, {}));
    EXPECT_TRUE(cyk_accepts(cnf, word({"a", "a", "a"})));
    EXPECT_FALSE(cyk_accepts(cnf, word({"b"})));
}

TEST(Cnf, StarRhsIsLowered) {
    const auto g = Grammar::parse("S -> a (b c)* \n");
    EXPECT_TRUE(accepts(g, word({"a"})));
    EXPECT_TRUE(accepts(g, word({"a", "b", "c", "b", "c"})));
    EXPECT_FALSE(accepts(g, word({"a", "b"})));
}

TEST(Cnf, RulesAreBinaryAndTerminal) {
    const auto cnf = to_cnf(query_ma());
    for (const auto& [a, b, c] : cnf.binary_rules) {
        EXPECT_LT(a, cnf.num_nonterminals());
        EXPECT_LT(b, cnf.num_nonterminals());
        EXPECT_LT(c, cnf.num_nonterminals());
    }
    EXPECT_GT(cnf.terminal_rules.size(), 0u);
    EXPECT_GT(cnf.binary_rules.size(), 0u);
}

TEST(Cnf, GrowthIsReported) {
    // The paper: CNF conversion blows the grammar up. The MA query has 2
    // source rules; its CNF has strictly more productions.
    const auto cnf = to_cnf(query_ma());
    EXPECT_GT(cnf.binary_rules.size() + cnf.terminal_rules.size(), 2u);
}

TEST(Nullable, DetectsIndirectNullability) {
    const auto g = Grammar::parse("S -> A B\nA -> eps | a\nB -> b?\n");
    const auto nullable = nullable_nonterminals(g);
    EXPECT_EQ(nullable, (std::vector<std::string>{"A", "B", "S"}));
}

TEST(Nullable, MaQueryVIsNullable) {
    const auto nullable = nullable_nonterminals(query_ma());
    EXPECT_EQ(nullable, (std::vector<std::string>{"V"}));
}

TEST(Rsm, BoxPerNonterminal) {
    const auto rsm = build_rsm(query_ma());
    EXPECT_EQ(rsm.nonterminals, (std::vector<std::string>{"S", "V"}));
    EXPECT_TRUE(rsm.box_start.contains("S"));
    EXPECT_TRUE(rsm.box_start.contains("V"));
    EXPECT_FALSE(rsm.box_final.at("S").empty());
    EXPECT_GT(rsm.num_states, 4u);
    // The RSM references both terminals (d, a_r, ...) and the nonterminal S
    // on edges of V's box.
    EXPECT_TRUE(rsm.delta.contains("S"));
    EXPECT_TRUE(rsm.delta.contains("d"));
    EXPECT_TRUE(rsm.delta.contains("d_r"));
}

TEST(Rsm, MatrixShapesAreGlobal) {
    const auto rsm = build_rsm(query_g1());
    for (const auto& symbol : rsm.symbols()) {
        const auto m = rsm.matrix(symbol);
        EXPECT_EQ(m.nrows(), rsm.num_states);
        EXPECT_EQ(m.ncols(), rsm.num_states);
    }
    EXPECT_EQ(rsm.matrix("absent").nnz(), 0u);
}

TEST(Rsm, NullableListMatchesGrammar) {
    const auto rsm = build_rsm(query_ma());
    EXPECT_EQ(rsm.nullable, (std::vector<std::string>{"V"}));
    const auto rsm2 = build_rsm(query_g1());
    EXPECT_TRUE(rsm2.nullable.empty());
}

TEST(PaperQueries, G1AcceptsSameGenerationWords) {
    const auto g = query_g1();
    EXPECT_TRUE(accepts(g, word({"subClassOf_r", "subClassOf"})));
    EXPECT_TRUE(accepts(g, word({"type_r", "type"})));
    EXPECT_TRUE(
        accepts(g, word({"subClassOf_r", "type_r", "type", "subClassOf"})));
    EXPECT_FALSE(accepts(g, word({"subClassOf", "subClassOf_r"})));
    EXPECT_FALSE(accepts(g, {}));
}

TEST(PaperQueries, G2IsBalancedWithCore) {
    const auto g = query_g2();
    EXPECT_TRUE(accepts(g, word({"subClassOf"})));
    EXPECT_TRUE(accepts(g, word({"subClassOf_r", "subClassOf", "subClassOf"})));
    EXPECT_FALSE(accepts(g, word({"subClassOf_r", "subClassOf"})));
}

TEST(PaperQueries, GeoShape) {
    const auto g = query_geo();
    EXPECT_TRUE(accepts(g, word({"broaderTransitive", "broaderTransitive_r"})));
    EXPECT_TRUE(accepts(g, word({"broaderTransitive", "broaderTransitive",
                                 "broaderTransitive_r", "broaderTransitive_r"})));
    EXPECT_FALSE(accepts(g, word({"broaderTransitive"})));
}

TEST(PaperQueries, MaShape) {
    const auto g = query_ma();
    // Simplest alias witness: d_r d (V derives eps).
    EXPECT_TRUE(accepts(g, word({"d_r", "d"})));
    EXPECT_TRUE(accepts(g, word({"d_r", "a_r", "d"})));
    EXPECT_TRUE(accepts(g, word({"d_r", "a", "d"})));
    EXPECT_TRUE(accepts(g, word({"d_r", "d_r", "d", "a", "d"})));
    EXPECT_FALSE(accepts(g, word({"d", "d_r"})));
    EXPECT_FALSE(accepts(g, {}));
}

/// Property: CYK over the CNF agrees with a derivation-based sampler. We
/// generate random words and check CYK(original lowered) == CYK(hand CNF)
/// for the Dyck grammar where membership is decidable by a counter.
TEST(CnfProperty, DyckMembershipMatchesCounterOracle) {
    const auto g = Grammar::parse("S -> a S b | a b | S S\n");
    const auto cnf = to_cnf(g);
    util::Rng rng{99};
    for (int trial = 0; trial < 300; ++trial) {
        const auto len = rng.below(10);
        std::vector<std::string> w;
        for (std::size_t i = 0; i < len; ++i) {
            w.push_back(rng.chance(0.5) ? "a" : "b");
        }
        // Counter oracle for the Dyck language over a=( and b=).
        int depth = 0;
        bool ok = !w.empty();
        for (const auto& t : w) {
            depth += t == "a" ? 1 : -1;
            if (depth < 0) ok = false;
        }
        ok = ok && depth == 0;
        ASSERT_EQ(cyk_accepts(cnf, w), ok) << "trial " << trial;
    }
}

}  // namespace
}  // namespace spbla::cfpq
