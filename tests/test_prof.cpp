/// \file test_prof.cpp
/// \brief spbla::prof — span nesting, counter aggregation, ring-buffer
/// thread-safety and Chrome-trace export.
///
/// The prof runtime (registration, rings, export) is compiled in every
/// build, so most tests drive it through the direct API after raising the
/// runtime level; only the tests that rely on the *macro* instrumentation
/// inside library kernels skip themselves when the build compiled the macros
/// out (SPBLA_PROFILE=off).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "backend/context.hpp"
#include "data/rmat.hpp"
#include "ops/spgemm.hpp"
#include "prof/prof.hpp"
#include "storage/dispatch.hpp"

namespace {

using namespace spbla;

/// Every test starts from a clean slate at trace level and restores the
/// compiled default afterwards — the registry is process-global.
class ProfTest : public ::testing::Test {
protected:
    void SetUp() override {
        prof::reset();
        prof::set_runtime_level(SPBLA_PROFILE_TRACE);
    }
    void TearDown() override {
        prof::set_runtime_level(prof::compiled_level());
        prof::reset();
    }
};

// --------------------------- minimal JSON parser ---------------------------
// Structural validator for the Chrome-trace export: accepts exactly the JSON
// value grammar (no extensions), so an unbalanced bracket, trailing comma or
// unescaped quote in the exporter fails the golden check.

bool parse_value(const std::string& s, std::size_t& i);

void skip_ws(const std::string& s, std::size_t& i) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) ++i;
}

bool parse_string(const std::string& s, std::size_t& i) {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\') {
            ++i;
            if (i >= s.size()) return false;
        }
        ++i;
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
}

bool parse_number(const std::string& s, std::size_t& i) {
    const std::size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
                            s[i] == '.' || s[i] == 'e' || s[i] == 'E' ||
                            s[i] == '+' || s[i] == '-')) {
        ++i;
    }
    return i > start;
}

bool parse_container(const std::string& s, std::size_t& i, char open, char close,
                     bool object) {
    if (i >= s.size() || s[i] != open) return false;
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == close) {
        ++i;
        return true;
    }
    for (;;) {
        skip_ws(s, i);
        if (object) {
            if (!parse_string(s, i)) return false;
            skip_ws(s, i);
            if (i >= s.size() || s[i] != ':') return false;
            ++i;
        }
        if (!parse_value(s, i)) return false;
        skip_ws(s, i);
        if (i >= s.size()) return false;
        if (s[i] == ',') {
            ++i;
            continue;
        }
        if (s[i] == close) {
            ++i;
            return true;
        }
        return false;
    }
}

bool parse_value(const std::string& s, std::size_t& i) {
    skip_ws(s, i);
    if (i >= s.size()) return false;
    switch (s[i]) {
        case '{': return parse_container(s, i, '{', '}', /*object=*/true);
        case '[': return parse_container(s, i, '[', ']', /*object=*/false);
        case '"': return parse_string(s, i);
        default: break;
    }
    if (s.compare(i, 4, "true") == 0) { i += 4; return true; }
    if (s.compare(i, 5, "false") == 0) { i += 5; return true; }
    if (s.compare(i, 4, "null") == 0) { i += 4; return true; }
    return parse_number(s, i);
}

bool is_valid_json(const std::string& s) {
    std::size_t i = 0;
    if (!parse_value(s, i)) return false;
    skip_ws(s, i);
    return i == s.size();
}

// ------------------------------- span tests --------------------------------

TEST_F(ProfTest, SpanNestingAndOrdering) {
    const auto outer = prof::register_span("test.outer");
    const auto inner = prof::register_span("test.inner");
    EXPECT_EQ(prof::current_span_site(), prof::kNoSite);
    {
        const prof::SpanScope a(outer);
        EXPECT_EQ(prof::current_span_site(), outer);
        { const prof::SpanScope b(inner); EXPECT_EQ(prof::current_span_site(), inner); }
        { const prof::SpanScope c(inner); }
        EXPECT_EQ(prof::current_span_site(), outer);
    }
    EXPECT_EQ(prof::current_span_site(), prof::kNoSite);

    EXPECT_EQ(prof::span_calls("test.outer"), 1u);
    EXPECT_EQ(prof::span_calls("test.inner"), 2u);

    std::uint64_t outer_start = 0, outer_end = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> inner_windows;
    for (const auto& e : prof::snapshot_events()) {
        if (e.name == "test.outer") {
            outer_start = e.start_ns;
            outer_end = e.start_ns + e.dur_ns;
        } else if (e.name == "test.inner") {
            inner_windows.emplace_back(e.start_ns, e.start_ns + e.dur_ns);
        }
    }
    ASSERT_EQ(inner_windows.size(), 2u);
    for (const auto& [start, end] : inner_windows) {
        // Nested spans are contained in the enclosing span's window.
        EXPECT_GE(start, outer_start);
        EXPECT_LE(end, outer_end);
    }
}

TEST_F(ProfTest, IterationSpansCarryTheIteration) {
    const auto site = prof::register_span("test.round");
    for (std::uint64_t i = 1; i <= 3; ++i) {
        const prof::SpanScope s(site, i);
    }
    std::vector<std::uint64_t> iters;
    for (const auto& e : prof::snapshot_events()) {
        if (e.name == "test.round") iters.push_back(e.iter);
    }
    EXPECT_EQ(iters, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(ProfTest, CounterAggregationPerSpanAndRoot) {
    const auto outer = prof::register_span("test.outer");
    const auto inner = prof::register_span("test.inner");
    const auto widgets = prof::register_counter("test.widgets");
    {
        const prof::SpanScope a(outer);
        prof::count(widgets, 5);
        { const prof::SpanScope b(inner); prof::count(widgets, 1); }
        prof::count(widgets, 7);
    }
    prof::count(widgets, 2);  // no active span -> "(root)"

    EXPECT_EQ(prof::counter_value("test.outer", "test.widgets"), 12u);
    EXPECT_EQ(prof::counter_value("test.inner", "test.widgets"), 1u);
    EXPECT_EQ(prof::counter_value("(root)", "test.widgets"), 2u);
    EXPECT_EQ(prof::counter_total("test.widgets"), 15u);
}

TEST_F(ProfTest, MaxCountersKeepTheLargestValue) {
    const auto site = prof::register_span("test.outer");
    const auto peak = prof::register_counter("test.peak", prof::CounterKind::Max);
    {
        const prof::SpanScope s(site);
        prof::count(peak, 5);
        prof::count(peak, 9);
        prof::count(peak, 3);
    }
    EXPECT_EQ(prof::counter_value("test.outer", "test.peak"), 9u);
}

TEST_F(ProfTest, ResetClearsEverything) {
    const auto site = prof::register_span("test.outer");
    const auto widgets = prof::register_counter("test.widgets");
    {
        const prof::SpanScope s(site);
        prof::count(widgets, 3);
    }
    prof::reset();
    EXPECT_EQ(prof::span_calls("test.outer"), 0u);
    EXPECT_EQ(prof::counter_total("test.widgets"), 0u);
    EXPECT_TRUE(prof::snapshot_events().empty());
}

TEST_F(ProfTest, RuntimeLevelGatesRecording) {
    const auto site = prof::register_span("test.outer");
    prof::set_runtime_level(SPBLA_PROFILE_OFF);
    EXPECT_FALSE(prof::counting());
    { const prof::SpanScope s(site); }
    EXPECT_EQ(prof::span_calls("test.outer"), 0u);

    prof::set_runtime_level(SPBLA_PROFILE_COUNTERS);
    EXPECT_TRUE(prof::counting());
    EXPECT_FALSE(prof::tracing());
    { const prof::SpanScope s(site); }
    EXPECT_EQ(prof::span_calls("test.outer"), 1u);
    EXPECT_TRUE(prof::snapshot_events().empty());  // no ring writes below trace
}

// ---------------------------- ring-buffer tests ----------------------------

TEST_F(ProfTest, RingWrapKeepsTheMostRecentEvents) {
    prof::set_ring_capacity(4);
    // Capacity applies to rings created after the call, so record on a fresh
    // thread.
    // Raw thread on purpose: prof must serve foreign (non-pool) threads.
    std::thread recorder([] {  // lint:allow(std-thread)
        const auto site = prof::register_span("test.wrap");
        for (std::uint64_t i = 1; i <= 10; ++i) {
            const prof::SpanScope s(site, i);
        }
    });
    recorder.join();
    std::vector<std::uint64_t> iters;
    for (const auto& e : prof::snapshot_events()) {
        if (e.name == "test.wrap") iters.push_back(e.iter);
    }
    EXPECT_EQ(iters, (std::vector<std::uint64_t>{7, 8, 9, 10}));
    EXPECT_EQ(prof::span_calls("test.wrap"), 10u);  // stats see every span
    prof::set_ring_capacity(8192);
}

TEST_F(ProfTest, ConcurrentSpansAndCountersAreRaceFree) {
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    const auto site = prof::register_span("test.parallel");
    const auto widgets = prof::register_counter("test.parallel_widgets");
    // Raw threads on purpose: the race check targets arbitrary writers, not
    // just pool workers (which ride the same thread-local logs anyway).
    std::vector<std::thread> threads;  // lint:allow(std-thread)
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([site, widgets] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                const prof::SpanScope s(site);
                prof::count(widgets, 1);
            }
        });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(prof::span_calls("test.parallel"),
              static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
    EXPECT_EQ(prof::counter_total("test.parallel_widgets"),
              static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
    // Every thread keeps its own ring; none lost events (capacity 8192).
    std::size_t events = 0;
    for (const auto& e : prof::snapshot_events()) {
        if (e.name == "test.parallel") ++events;
    }
    EXPECT_EQ(events, static_cast<std::size_t>(kThreads) * kSpansPerThread);
}

// ------------------------------ export tests -------------------------------

TEST_F(ProfTest, ChromeTraceJsonIsWellFormed) {
    const auto outer = prof::register_span("test.outer");
    const auto inner = prof::register_span("test.inner");
    const auto widgets = prof::register_counter("test.widgets");
    {
        const prof::SpanScope a(outer, 7);
        prof::count(widgets, 42);
        const prof::SpanScope b(inner);
    }
    const std::string json = prof::chrome_trace_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"spbla_counters\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("test.inner"), std::string::npos);
    EXPECT_NE(json.find("test.widgets"), std::string::npos);
}

TEST_F(ProfTest, JsonEscapingSurvivesHostileNames) {
    const auto site = prof::register_span("test.\"quoted\\name\"");
    { const prof::SpanScope s(site); }
    const std::string json = prof::chrome_trace_json();
    EXPECT_TRUE(is_valid_json(json)) << json;
}

TEST_F(ProfTest, WriteChromeTraceRoundTrips) {
    const auto site = prof::register_span("test.outer");
    { const prof::SpanScope s(site); }
    const std::string path = ::testing::TempDir() + "spbla_trace_test.json";
    ASSERT_TRUE(prof::write_chrome_trace(path));
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string contents;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) contents.append(buffer, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(contents, prof::chrome_trace_json());
    EXPECT_TRUE(is_valid_json(contents));
}

TEST_F(ProfTest, TextSummaryShowsTheSpanTree) {
    const auto outer = prof::register_span("test.outer");
    const auto inner = prof::register_span("test.inner");
    const auto widgets = prof::register_counter("test.widgets");
    {
        const prof::SpanScope a(outer);
        const prof::SpanScope b(inner);
        prof::count(widgets, 3);
    }
    const std::string summary = prof::text_summary();
    EXPECT_NE(summary.find("test.outer"), std::string::npos);
    EXPECT_NE(summary.find("test.inner"), std::string::npos);
    EXPECT_NE(summary.find("test.widgets"), std::string::npos);
    // The child is indented under its parent, so it appears after it.
    EXPECT_LT(summary.find("test.outer"), summary.find("test.inner"));
}

// ------------------------ macro instrumentation tests ----------------------
// These rely on the SPBLA_PROF_* macro sites inside the library kernels, so
// they only observe anything when the build compiled them in.

TEST_F(ProfTest, SpGemmCountersMatchTheComputedResult) {
    if (prof::compiled_level() < SPBLA_PROFILE_COUNTERS) {
        GTEST_SKIP() << "library built with SPBLA_PROFILE=off";
    }
    backend::Context ctx{backend::Policy::Parallel, 4};  // real pool even on 1 core
    // Pin the CSR kernel: these assertions are about the spgemm macro sites,
    // and auto dispatch may legitimately route this density to the bit tier.
    const storage::ScopedHint force_csr{storage::FormatHint::ForceCsr};
    const Matrix a = data::make_rmat(9, 8);
    prof::reset();
    const Matrix c = storage::multiply(ctx, a, a);

    EXPECT_EQ(prof::counter_value("spgemm.multiply", "nnz_in"),
              static_cast<std::uint64_t>(2 * a.nnz()));
    EXPECT_EQ(prof::counter_value("spgemm.multiply", "nnz_out"),
              static_cast<std::uint64_t>(c.nnz()));
    const std::uint64_t total = prof::counter_value("spgemm.multiply", "rows_total");
    EXPECT_EQ(total, static_cast<std::uint64_t>(a.nrows()));
    // Bin classes partition the rows.
    EXPECT_EQ(prof::counter_value("spgemm.multiply", "rows_empty") +
                  prof::counter_value("spgemm.multiply", "rows_tiny") +
                  prof::counter_value("spgemm.multiply", "rows_hash_small") +
                  prof::counter_value("spgemm.multiply", "rows_hash_large") +
                  prof::counter_value("spgemm.multiply", "rows_dense"),
              total);
    EXPECT_EQ(prof::span_calls("spgemm.multiply"), 1u);
    EXPECT_GE(prof::span_calls("spgemm.numeric"), 1u);
}

TEST_F(ProfTest, PoolWorkersAttributeCountersToTheLaunchingSpan) {
    if (prof::compiled_level() < SPBLA_PROFILE_COUNTERS) {
        GTEST_SKIP() << "library built with SPBLA_PROFILE=off";
    }
    backend::Context ctx{backend::Policy::Parallel, 4};  // real pool even on 1 core
    // Pin the CSR kernel for the same reason as above: the hash-bin counters
    // under test only exist on the spgemm path.
    const storage::ScopedHint force_csr{storage::FormatHint::ForceCsr};
    // Zipf-skewed rows populate the hash bins (R-MAT at this scale classifies
    // almost everything tiny or dense, leaving hash_probes at zero).
    const Matrix a = data::make_zipf(4096, 4096, 16, 1.0);
    prof::reset();
    (void)storage::multiply(ctx, a, a);
    // Hash-kernel counters are incremented on pool workers; the WorkerScope
    // wiring must fold them under the numeric span rather than "(root)".
    const std::uint64_t probes = prof::counter_total("hash_probes");
    EXPECT_GT(probes, 0u);
    EXPECT_EQ(prof::counter_value("(root)", "hash_probes"), 0u);
    // The launcher records each bulk launch under the span doing it.
    EXPECT_GE(prof::counter_total("pool_bulk_launches"), 1u);
}

}  // namespace
