#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "spbla/spbla.h"

namespace {

/// RAII library session so every test starts from a clean slate.
class CApiTest : public ::testing::Test {
protected:
    void SetUp() override {
        ASSERT_EQ(spbla_Initialize(SPBLA_INIT_DEFAULT), SPBLA_STATUS_SUCCESS);
    }
    void TearDown() override {
        ASSERT_EQ(spbla_GetLiveObjects(), 0u) << "test leaked matrix handles";
        ASSERT_EQ(spbla_Finalize(), SPBLA_STATUS_SUCCESS);
    }
};

TEST(CApiLifecycle, OperationsFailBeforeInitialize) {
    spbla_Matrix m = nullptr;
    EXPECT_EQ(spbla_Matrix_New(&m, 2, 2), SPBLA_STATUS_NOT_INITIALIZED);
    EXPECT_EQ(spbla_Finalize(), SPBLA_STATUS_NOT_INITIALIZED);
    EXPECT_EQ(spbla_IsInitialized(), 0);
}

TEST(CApiLifecycle, DoubleInitializeRejected) {
    ASSERT_EQ(spbla_Initialize(SPBLA_INIT_DEFAULT), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_Initialize(SPBLA_INIT_DEFAULT), SPBLA_STATUS_INVALID_STATE);
    EXPECT_EQ(spbla_Finalize(), SPBLA_STATUS_SUCCESS);
}

TEST(CApiLifecycle, FinalizeWithLiveObjectsRejected) {
    ASSERT_EQ(spbla_Initialize(SPBLA_INIT_DEFAULT), SPBLA_STATUS_SUCCESS);
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 4, 4), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_Finalize(), SPBLA_STATUS_INVALID_STATE);
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(m, nullptr);
    EXPECT_EQ(spbla_Finalize(), SPBLA_STATUS_SUCCESS);
}

TEST(CApiLifecycle, SequentialHintWorks) {
    ASSERT_EQ(spbla_Initialize(SPBLA_INIT_SEQUENTIAL), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_IsInitialized(), 1);
    EXPECT_EQ(spbla_Finalize(), SPBLA_STATUS_SUCCESS);
}

TEST(CApiLifecycle, StatusNamesAndVersion) {
    EXPECT_STREQ(spbla_Status_Name(SPBLA_STATUS_SUCCESS), "SUCCESS");
    EXPECT_STREQ(spbla_Status_Name(SPBLA_STATUS_DIMENSION_MISMATCH),
                 "DIMENSION_MISMATCH");
    EXPECT_GE(spbla_GetVersion(), 10000u);
}

TEST_F(CApiTest, NewQueryFree) {
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 3, 5), SPBLA_STATUS_SUCCESS);
    spbla_Index nrows = 0, ncols = 0, nvals = 99;
    EXPECT_EQ(spbla_Matrix_Nrows(m, &nrows), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_Matrix_Ncols(m, &ncols), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_Matrix_Nvals(m, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nrows, 3u);
    EXPECT_EQ(ncols, 5u);
    EXPECT_EQ(nvals, 0u);
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, BuildAndExtractRoundTrip) {
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 4, 4), SPBLA_STATUS_SUCCESS);
    const std::array<spbla_Index, 3> rows{2, 0, 2};
    const std::array<spbla_Index, 3> cols{1, 3, 1};  // duplicate (2,1) merges
    ASSERT_EQ(spbla_Matrix_Build(m, rows.data(), cols.data(), 3, SPBLA_HINT_NO),
              SPBLA_STATUS_SUCCESS);

    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(m, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 2u);

    std::array<spbla_Index, 2> out_rows{}, out_cols{};
    spbla_Index cap = 2;
    ASSERT_EQ(spbla_Matrix_ExtractPairs(m, out_rows.data(), out_cols.data(), &cap),
              SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(cap, 2u);
    EXPECT_EQ(out_rows[0], 0u);
    EXPECT_EQ(out_cols[0], 3u);
    EXPECT_EQ(out_rows[1], 2u);
    EXPECT_EQ(out_cols[1], 1u);
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, BuildAccumulateHint) {
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 3, 3), SPBLA_STATUS_SUCCESS);
    const spbla_Index r0 = 0, c0 = 0;
    ASSERT_EQ(spbla_Matrix_Build(m, &r0, &c0, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);
    const spbla_Index r1 = 1, c1 = 1;
    ASSERT_EQ(spbla_Matrix_Build(m, &r1, &c1, 1, SPBLA_HINT_ACCUMULATE),
              SPBLA_STATUS_SUCCESS);
    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(m, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 2u);
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, BuildOutOfRangeFails) {
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 2, 2), SPBLA_STATUS_SUCCESS);
    const spbla_Index r = 2, c = 0;
    EXPECT_EQ(spbla_Matrix_Build(m, &r, &c, 1, SPBLA_HINT_NO), SPBLA_STATUS_OUT_OF_RANGE);
    EXPECT_STRNE(spbla_GetLastError(), "");
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, ExtractIntoTooSmallBuffer) {
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 2, 2), SPBLA_STATUS_SUCCESS);
    const std::array<spbla_Index, 2> rows{0, 1}, cols{0, 1};
    ASSERT_EQ(spbla_Matrix_Build(m, rows.data(), cols.data(), 2, SPBLA_HINT_NO),
              SPBLA_STATUS_SUCCESS);
    std::array<spbla_Index, 1> r{}, c{};
    spbla_Index cap = 1;
    EXPECT_EQ(spbla_Matrix_ExtractPairs(m, r.data(), c.data(), &cap),
              SPBLA_STATUS_OUT_OF_RANGE);
    EXPECT_EQ(cap, 2u);  // reports the required capacity
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, MxMWithAndWithoutAccumulate) {
    spbla_Matrix a = nullptr, b = nullptr, c = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&a, 3, 3), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&b, 3, 3), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&c, 3, 3), SPBLA_STATUS_SUCCESS);
    const spbla_Index ar = 0, ac = 1;
    ASSERT_EQ(spbla_Matrix_Build(a, &ar, &ac, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);
    const spbla_Index br = 1, bc = 2;
    ASSERT_EQ(spbla_Matrix_Build(b, &br, &bc, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);
    const spbla_Index cr = 2, cc = 0;
    ASSERT_EQ(spbla_Matrix_Build(c, &cr, &cc, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);

    // c += a*b keeps the old cell and adds (0,2).
    ASSERT_EQ(spbla_MxM(c, a, b, SPBLA_HINT_ACCUMULATE), SPBLA_STATUS_SUCCESS);
    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(c, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 2u);

    // Overwrite variant keeps only the product.
    ASSERT_EQ(spbla_MxM(c, a, b, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Nvals(c, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 1u);

    ASSERT_EQ(spbla_Matrix_Free(&a), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&b), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&c), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, MxMDimensionMismatch) {
    spbla_Matrix a = nullptr, b = nullptr, c = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&a, 3, 4), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&b, 5, 3), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&c, 3, 3), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_MxM(c, a, b, SPBLA_HINT_NO), SPBLA_STATUS_DIMENSION_MISMATCH);
    ASSERT_EQ(spbla_Matrix_Free(&a), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&b), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&c), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, EWiseAddKroneckerTransposeReduceSubmatrix) {
    spbla_Matrix a = nullptr, b = nullptr, r = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&a, 2, 2), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&b, 2, 2), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&r, 2, 2), SPBLA_STATUS_SUCCESS);
    const spbla_Index ar = 0, ac = 1;
    ASSERT_EQ(spbla_Matrix_Build(a, &ar, &ac, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);
    const spbla_Index br = 1, bc = 0;
    ASSERT_EQ(spbla_Matrix_Build(b, &br, &bc, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);

    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_EWiseAdd(r, a, b), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Nvals(r, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 2u);

    ASSERT_EQ(spbla_Kronecker(r, a, b), SPBLA_STATUS_SUCCESS);
    spbla_Index nrows = 0;
    ASSERT_EQ(spbla_Matrix_Nrows(r, &nrows), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nrows, 4u);

    ASSERT_EQ(spbla_Matrix_Transpose(r, a), SPBLA_STATUS_SUCCESS);
    std::array<spbla_Index, 1> trows{}, tcols{};
    spbla_Index cap = 1;
    ASSERT_EQ(spbla_Matrix_ExtractPairs(r, trows.data(), tcols.data(), &cap),
              SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(trows[0], 1u);
    EXPECT_EQ(tcols[0], 0u);

    ASSERT_EQ(spbla_Matrix_Reduce(r, a), SPBLA_STATUS_SUCCESS);
    spbla_Index ncols = 0;
    ASSERT_EQ(spbla_Matrix_Ncols(r, &ncols), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(ncols, 1u);
    ASSERT_EQ(spbla_Matrix_Nvals(r, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 1u);  // only row 0 of `a` is non-empty

    ASSERT_EQ(spbla_Matrix_ExtractSubMatrix(r, a, 0, 1, 1, 1), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Nvals(r, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 1u);

    ASSERT_EQ(spbla_Matrix_Free(&a), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&b), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&r), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, EWiseMultIntersects) {
    spbla_Matrix a = nullptr, b = nullptr, r = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&a, 2, 2), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&b, 2, 2), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&r, 2, 2), SPBLA_STATUS_SUCCESS);
    const std::array<spbla_Index, 2> ar{0, 1}, ac{0, 1};
    ASSERT_EQ(spbla_Matrix_Build(a, ar.data(), ac.data(), 2, SPBLA_HINT_NO),
              SPBLA_STATUS_SUCCESS);
    const std::array<spbla_Index, 2> br{0, 1}, bc{0, 0};
    ASSERT_EQ(spbla_Matrix_Build(b, br.data(), bc.data(), 2, SPBLA_HINT_NO),
              SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_EWiseMult(r, a, b), SPBLA_STATUS_SUCCESS);
    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(r, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 1u);  // only (0,0) is in both
    ASSERT_EQ(spbla_Matrix_Free(&a), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&b), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&r), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, DuplicateIsIndependent) {
    spbla_Matrix a = nullptr, d = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&a, 2, 2), SPBLA_STATUS_SUCCESS);
    const spbla_Index r = 0, c = 0;
    ASSERT_EQ(spbla_Matrix_Build(a, &r, &c, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Duplicate(a, &d), SPBLA_STATUS_SUCCESS);

    const spbla_Index r2 = 1, c2 = 1;
    ASSERT_EQ(spbla_Matrix_Build(a, &r2, &c2, 1, SPBLA_HINT_NO), SPBLA_STATUS_SUCCESS);
    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(d, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 1u);  // duplicate untouched by the rebuild of `a`

    ASSERT_EQ(spbla_Matrix_Free(&a), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&d), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, VectorLifecycleAndOps) {
    spbla_Vector v = nullptr, w = nullptr, r = nullptr;
    ASSERT_EQ(spbla_Vector_New(&v, 6), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Vector_New(&w, 6), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Vector_New(&r, 6), SPBLA_STATUS_SUCCESS);

    const std::array<spbla_Index, 3> vi{1, 3, 3};  // duplicate merges
    ASSERT_EQ(spbla_Vector_Build(v, vi.data(), 3), SPBLA_STATUS_SUCCESS);
    const std::array<spbla_Index, 2> wi{3, 5};
    ASSERT_EQ(spbla_Vector_Build(w, wi.data(), 2), SPBLA_STATUS_SUCCESS);

    spbla_Index size = 0, nvals = 0;
    ASSERT_EQ(spbla_Vector_Size(v, &size), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(size, 6u);
    ASSERT_EQ(spbla_Vector_Nvals(v, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 2u);

    ASSERT_EQ(spbla_Vector_EWiseAdd(r, v, w), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Vector_Nvals(r, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 3u);  // {1, 3, 5}

    ASSERT_EQ(spbla_Vector_EWiseMult(r, v, w), SPBLA_STATUS_SUCCESS);
    std::array<spbla_Index, 1> out{};
    spbla_Index cap = 1;
    ASSERT_EQ(spbla_Vector_ExtractValues(r, out.data(), &cap), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(cap, 1u);
    EXPECT_EQ(out[0], 3u);

    ASSERT_EQ(spbla_Vector_Free(&v), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Vector_Free(&w), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Vector_Free(&r), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, VectorMatrixProducts) {
    // Path 0 -> 1 -> 2; frontier {0} pushes to {1}.
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 3, 3), SPBLA_STATUS_SUCCESS);
    const std::array<spbla_Index, 2> rows{0, 1}, cols{1, 2};
    ASSERT_EQ(spbla_Matrix_Build(m, rows.data(), cols.data(), 2, SPBLA_HINT_NO),
              SPBLA_STATUS_SUCCESS);

    spbla_Vector frontier = nullptr, next = nullptr;
    ASSERT_EQ(spbla_Vector_New(&frontier, 3), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Vector_New(&next, 3), SPBLA_STATUS_SUCCESS);
    const spbla_Index zero = 0;
    ASSERT_EQ(spbla_Vector_Build(frontier, &zero, 1), SPBLA_STATUS_SUCCESS);

    ASSERT_EQ(spbla_VxM(next, frontier, m), SPBLA_STATUS_SUCCESS);
    std::array<spbla_Index, 3> out{};
    spbla_Index cap = 3;
    ASSERT_EQ(spbla_Vector_ExtractValues(next, out.data(), &cap), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(cap, 1u);
    EXPECT_EQ(out[0], 1u);

    // mxv: rows whose neighbourhood intersects {2} -> row 1.
    const spbla_Index two = 2;
    ASSERT_EQ(spbla_Vector_Build(frontier, &two, 1), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_MxV(next, m, frontier), SPBLA_STATUS_SUCCESS);
    cap = 3;
    ASSERT_EQ(spbla_Vector_ExtractValues(next, out.data(), &cap), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(cap, 1u);
    EXPECT_EQ(out[0], 1u);

    // Reduce to vector: non-empty rows of m are {0, 1}.
    ASSERT_EQ(spbla_Matrix_ReduceVector(next, m), SPBLA_STATUS_SUCCESS);
    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Vector_Nvals(next, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 2u);

    ASSERT_EQ(spbla_Vector_Free(&frontier), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Vector_Free(&next), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, VectorErrors) {
    spbla_Vector v = nullptr;
    ASSERT_EQ(spbla_Vector_New(&v, 3), SPBLA_STATUS_SUCCESS);
    const spbla_Index bad = 3;
    EXPECT_EQ(spbla_Vector_Build(v, &bad, 1), SPBLA_STATUS_OUT_OF_RANGE);
    EXPECT_EQ(spbla_Vector_Free(&v), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_Vector_Free(&v), SPBLA_STATUS_INVALID_ARGUMENT);
    EXPECT_EQ(spbla_Vector_New(nullptr, 3), SPBLA_STATUS_INVALID_ARGUMENT);
}

TEST_F(CApiTest, ApplyDeltaMutatesInPlace) {
    spbla_Matrix m = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&m, 4, 4), SPBLA_STATUS_SUCCESS);
    const std::array<spbla_Index, 3> rows{0, 1, 2};
    const std::array<spbla_Index, 3> cols{1, 2, 3};
    ASSERT_EQ(spbla_Matrix_Build(m, rows.data(), cols.data(), 3, SPBLA_HINT_NO),
              SPBLA_STATUS_SUCCESS);

    // Insert (3, 0), delete (1, 2): the path rewires into a cycle chord.
    const spbla_Index add_r = 3, add_c = 0, del_r = 1, del_c = 2;
    ASSERT_EQ(spbla_MatrixApplyDelta(m, &add_r, &add_c, 1, &del_r, &del_c, 1),
              SPBLA_STATUS_SUCCESS);
    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(m, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 3u);
    std::array<spbla_Index, 3> out_r{}, out_c{};
    ASSERT_EQ(spbla_Matrix_ExtractPairs(m, out_r.data(), out_c.data(), &nvals),
              SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(out_r, (std::array<spbla_Index, 3>{0, 2, 3}));
    EXPECT_EQ(out_c, (std::array<spbla_Index, 3>{1, 3, 0}));

    // Empty batches are accepted no-ops; null arrays with nonzero counts are
    // rejected.
    EXPECT_EQ(spbla_MatrixApplyDelta(m, nullptr, nullptr, 0, nullptr, nullptr, 0),
              SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(spbla_MatrixApplyDelta(m, nullptr, nullptr, 1, nullptr, nullptr, 0),
              SPBLA_STATUS_INVALID_ARGUMENT);
    EXPECT_EQ(spbla_MatrixApplyDelta(nullptr, nullptr, nullptr, 0, nullptr, nullptr, 0),
              SPBLA_STATUS_INVALID_ARGUMENT);
    ASSERT_EQ(spbla_Matrix_Free(&m), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, ClosureIncrementalTracksEdgeStream) {
    spbla_Matrix adj = nullptr;
    spbla_Matrix closure = nullptr;
    ASSERT_EQ(spbla_Matrix_New(&adj, 5, 5), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_New(&closure, 5, 5), SPBLA_STATUS_SUCCESS);

    // Stream in the path 0→1→2→3→4 one edge at a time; the closure handle
    // starts empty, so the first batch triggers the scratch build.
    for (spbla_Index i = 0; i < 4; ++i) {
        const spbla_Index r = i, c = i + 1;
        ASSERT_EQ(spbla_ClosureIncremental(closure, adj, &r, &c, 1, nullptr,
                                           nullptr, 0),
                  SPBLA_STATUS_SUCCESS);
    }
    spbla_Index nvals = 0;
    ASSERT_EQ(spbla_Matrix_Nvals(closure, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 10u);  // all pairs i < j on a 5-path

    // Delete the middle edge: exactly the pairs crossing 2→3 disappear.
    const spbla_Index del_r = 2, del_c = 3;
    ASSERT_EQ(spbla_ClosureIncremental(closure, adj, nullptr, nullptr, 0, &del_r,
                                       &del_c, 1),
              SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Nvals(closure, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 4u);  // {01,02,12,34}
    ASSERT_EQ(spbla_Matrix_Nvals(adj, &nvals), SPBLA_STATUS_SUCCESS);
    EXPECT_EQ(nvals, 3u) << "adjacency must be updated in place";

    ASSERT_EQ(spbla_Matrix_Free(&adj), SPBLA_STATUS_SUCCESS);
    ASSERT_EQ(spbla_Matrix_Free(&closure), SPBLA_STATUS_SUCCESS);
}

TEST_F(CApiTest, NullArgumentsRejected) {
    EXPECT_EQ(spbla_Matrix_New(nullptr, 2, 2), SPBLA_STATUS_INVALID_ARGUMENT);
    EXPECT_EQ(spbla_Matrix_Free(nullptr), SPBLA_STATUS_INVALID_ARGUMENT);
    spbla_Matrix null_matrix = nullptr;
    EXPECT_EQ(spbla_Matrix_Free(&null_matrix), SPBLA_STATUS_INVALID_ARGUMENT);
    EXPECT_EQ(spbla_MxM(nullptr, nullptr, nullptr, SPBLA_HINT_NO),
              SPBLA_STATUS_INVALID_ARGUMENT);
}

}  // namespace
