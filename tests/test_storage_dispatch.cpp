/// \file test_storage_dispatch.cpp
/// \brief Format sweep over the storage engine: every public dispatch
/// operation must compute the identical result under forced-CSR, forced-COO,
/// forced-dense and cost-model (auto) routing. Also pins down the cache
/// accounting contract (secondaries charged to the tracker, budget respected,
/// no leaks on teardown) and the no-thrash property of the hysteresis.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "algorithms/closure.hpp"
#include "data/rmat.hpp"
#include "helpers.hpp"
#include "ops/ops.hpp"
#include "storage/dispatch.hpp"
#include "util/rng.hpp"

namespace spbla {
namespace {

using testing::ctx;

/// All hints the sweep runs under.
const storage::FormatHint kHints[] = {
    storage::FormatHint::Auto,
    storage::FormatHint::ForceCsr,
    storage::FormatHint::ForceCoo,
    storage::FormatHint::ForceDense,
    storage::FormatHint::ForceBitBlocks,
};

std::string hint_name(const ::testing::TestParamInfo<storage::FormatHint>& info) {
    switch (info.param) {
        case storage::FormatHint::Auto: return "Auto";
        case storage::FormatHint::ForceCsr: return "ForceCsr";
        case storage::FormatHint::ForceCoo: return "ForceCoo";
        case storage::FormatHint::ForceDense: return "ForceDense";
        case storage::FormatHint::ForceBitBlocks: return "ForceBitBlocks";
    }
    return "Unknown";
}

/// Leak-checked fixture parameterised over the forced format. The hint is
/// installed for the whole test body and restored before the leak check.
class FormatSweep
    : public testing::CheckedContextWithParam<storage::FormatHint> {
protected:
    void SetUp() override {
        CheckedContext::SetUp();
        previous_ = storage::global_hint();
        storage::set_global_hint(GetParam());
    }

    void TearDown() override {
        storage::set_global_hint(previous_);
        CheckedContext::TearDown();
    }

private:
    storage::FormatHint previous_{storage::FormatHint::Auto};
};

/// Reference results are always computed by the raw CSR kernels — the oldest
/// and most battle-tested path — on unwrapped copies of the same inputs.
CsrMatrix ref_csr(const Matrix& m) { return m.csr(ctx()); }

TEST_P(FormatSweep, MultiplyFamilyMatchesCsrKernels) {
    const auto a = testing::random_matrix(40, 40, 0.12, 1001);
    const auto b = testing::random_matrix(40, 40, 0.18, 1002);
    const auto c = testing::random_matrix(40, 40, 0.05, 1003);

    EXPECT_EQ(storage::multiply(ctx(), a, b),
              Matrix(ops::multiply(ctx(), ref_csr(a), ref_csr(b)), ctx()));
    EXPECT_EQ(storage::multiply_add(ctx(), c, a, b),
              Matrix(ops::multiply_add(ctx(), ref_csr(c), ref_csr(a), ref_csr(b)),
                     ctx()));
    const auto bt = storage::transpose(ctx(), b);
    EXPECT_EQ(storage::multiply_masked(ctx(), c, a, bt),
              Matrix(ops::multiply_masked(ctx(), ref_csr(c), ref_csr(a), ref_csr(bt)),
                     ctx()));
    EXPECT_EQ(storage::multiply_masked(ctx(), c, a, bt, /*complement=*/true),
              Matrix(ops::multiply_masked(ctx(), ref_csr(c), ref_csr(a), ref_csr(bt),
                                          /*complement=*/true),
                     ctx()));
}

TEST_P(FormatSweep, ElementwiseFamilyMatchesCsrKernels) {
    const auto a = testing::random_matrix(33, 47, 0.2, 1004);
    const auto b = testing::random_matrix(33, 47, 0.2, 1005);

    EXPECT_EQ(storage::ewise_add(ctx(), a, b),
              Matrix(ops::ewise_add(ctx(), ref_csr(a), ref_csr(b)), ctx()));
    EXPECT_EQ(storage::ewise_mult(ctx(), a, b),
              Matrix(ops::ewise_mult(ctx(), ref_csr(a), ref_csr(b)), ctx()));
    EXPECT_EQ(storage::ewise_diff(ctx(), a, b),
              Matrix(ops::ewise_diff(ctx(), ref_csr(a), ref_csr(b)), ctx()));
}

TEST_P(FormatSweep, StructuralFamilyMatchesCsrKernels) {
    const auto a = testing::random_matrix(21, 34, 0.15, 1006);
    const auto b = testing::random_matrix(5, 7, 0.3, 1007);

    EXPECT_EQ(storage::transpose(ctx(), a),
              Matrix(ops::transpose(ctx(), ref_csr(a)), ctx()));
    EXPECT_EQ(storage::kronecker(ctx(), b, a),
              Matrix(ops::kronecker(ctx(), ref_csr(b), ref_csr(a)), ctx()));
    EXPECT_EQ(storage::submatrix(ctx(), a, 3, 5, 13, 20),
              Matrix(ops::submatrix(ctx(), ref_csr(a), 3, 5, 13, 20), ctx()));
}

TEST_P(FormatSweep, ReductionAndVectorFamilyMatchesCsrKernels) {
    const auto a = testing::random_matrix(29, 29, 0.18, 1008);
    util::Rng rng{1009};
    std::vector<Index> set;
    for (Index i = 0; i < 29; ++i) {
        if (rng.below(3) == 0) set.push_back(i);
    }
    const auto x = SpVector::from_indices(29, std::move(set));

    EXPECT_EQ(storage::reduce_to_column(ctx(), a),
              ops::reduce_to_column(ctx(), ref_csr(a)));
    EXPECT_EQ(storage::reduce_to_row(ctx(), a),
              ops::reduce_to_row(ctx(), ref_csr(a)));
    EXPECT_EQ(storage::reduce_scalar(a), ref_csr(a).nnz());
    EXPECT_EQ(storage::mxv(ctx(), a, x), ops::mxv(ctx(), ref_csr(a), x));
    EXPECT_EQ(storage::vxm(ctx(), x, a), ops::vxm(ctx(), x, ref_csr(a)));
}

TEST_P(FormatSweep, PrimaryFormatOfInputsDoesNotChangeResults) {
    // Feed each op the same content anchored in all four primaries; every
    // combination must agree cell-for-cell.
    const auto seed = testing::random_matrix(24, 24, 0.2, 1010);
    Matrix as_csr = seed;
    as_csr.convert_to(Format::Csr, ctx());
    Matrix as_coo = seed;
    as_coo.convert_to(Format::Coo, ctx());
    Matrix as_dense = seed;
    as_dense.convert_to(Format::Dense, ctx());
    Matrix as_bitblocks = seed;
    as_bitblocks.convert_to(Format::BitBlocks, ctx());

    const auto expect_sq = storage::multiply(ctx(), seed, seed);
    for (const Matrix* lhs : {&as_csr, &as_coo, &as_dense, &as_bitblocks}) {
        for (const Matrix* rhs : {&as_csr, &as_coo, &as_dense, &as_bitblocks}) {
            EXPECT_EQ(storage::multiply(ctx(), *lhs, *rhs), expect_sq)
                << format_name(lhs->format()) << " x " << format_name(rhs->format());
            EXPECT_EQ(storage::ewise_add(ctx(), *lhs, *rhs), seed);
        }
    }
}

TEST_P(FormatSweep, DegenerateShapesSurvive) {
    const Matrix empty{17, 17, ctx()};
    const Matrix tall{64, 1, ctx()};
    const auto a = testing::random_matrix(17, 17, 0.2, 1011);

    EXPECT_EQ(storage::multiply(ctx(), empty, a).nnz(), 0u);
    EXPECT_EQ(storage::ewise_add(ctx(), empty, a), a);
    EXPECT_EQ(storage::ewise_mult(ctx(), empty, a).nnz(), 0u);
    EXPECT_EQ(storage::transpose(ctx(), tall).nrows(), 1u);
    EXPECT_EQ(storage::reduce_to_column(ctx(), empty).nnz(), 0u);
    EXPECT_EQ(storage::kronecker(ctx(), empty, a).nnz(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Hints, FormatSweep, ::testing::ValuesIn(kHints),
                         hint_name);

// ---------------------------------------------------------------------------
// Cache accounting: the contract the ISSUE spells out. Secondary
// representations are device allocations — charged to the handle's context
// tracker, capped by the process budget, and released with the handle.
// ---------------------------------------------------------------------------

using StorageCache = testing::CheckedContext;

TEST_F(StorageCache, SecondaryRepresentationChargesTracker) {
    const auto m = testing::random_matrix(64, 64, 0.1, 2001);
    const auto base = ctx().tracker().current_bytes();
    const auto gauge_base = storage::cached_bytes();

    const auto& coo = m.coo(ctx());
    EXPECT_EQ(ctx().tracker().current_bytes(), base + coo.device_bytes());
    EXPECT_EQ(m.cached_bytes(), coo.device_bytes());
    EXPECT_EQ(storage::cached_bytes(), gauge_base + coo.device_bytes());

    m.drop_cached();
    EXPECT_EQ(ctx().tracker().current_bytes(), base);
    EXPECT_EQ(m.cached_bytes(), 0u);
    EXPECT_EQ(storage::cached_bytes(), gauge_base);
}

TEST_F(StorageCache, MutationInvalidatesCachedSecondaries) {
    auto m = testing::random_matrix(32, 32, 0.2, 2002);
    (void)m.coo(ctx());
    (void)m.dense(ctx());
    ASSERT_GT(m.cached_bytes(), 0u);

    m += Matrix::identity(32, ctx());  // content change
    EXPECT_EQ(m.cached_bytes(), 0u);
    EXPECT_TRUE(m.get(7, 7));
}

TEST_F(StorageCache, DispatchTrimsCachesBackUnderBudget) {
    const auto saved = storage::cache_budget();
    storage::set_cache_budget(0);
    {
        const auto a = testing::random_matrix(48, 48, 0.2, 2003);
        const auto b = testing::random_matrix(48, 48, 0.2, 2004);
        storage::ScopedHint force{storage::FormatHint::ForceCoo};
        (void)storage::multiply(ctx(), a, b);
        // The forced-COO multiply had to convert, but with a zero budget the
        // trim pass must have dropped every retained secondary again.
        EXPECT_EQ(a.cached_bytes(), 0u);
        EXPECT_EQ(b.cached_bytes(), 0u);
    }
    storage::set_cache_budget(saved);
}

TEST_F(StorageCache, RepeatedDispatchHitsTheCache) {
    const auto a = testing::random_matrix(48, 48, 0.2, 2005);
    storage::ScopedHint force{storage::FormatHint::ForceCoo};
    storage::reset_stats();
    for (int i = 0; i < 8; ++i) (void)storage::transpose(ctx(), a);
    const auto conversions =
        storage::stats().format_conversions.load(std::memory_order_relaxed);
    const auto hits = storage::stats().repr_cache_hits.load(std::memory_order_relaxed);
    // One conversion to COO on the first round; the other seven reuse it.
    EXPECT_LE(conversions, 1u);
    EXPECT_GE(hits, 7u);
}

// ---------------------------------------------------------------------------
// No-thrash: the hysteresis keeps fixpoint loops in a stable format, so the
// conversion counter stays bounded by the handles involved, not the rounds.
// ---------------------------------------------------------------------------

using DispatchStability = testing::CheckedContext;

TEST_F(DispatchStability, RepeatedMultiplyConvertsAtMostOncePerOperand) {
    const auto a = testing::random_matrix(96, 96, 0.05, 3001);
    const auto b = testing::random_matrix(96, 96, 0.05, 3002);
    storage::reset_stats();
    for (int i = 0; i < 12; ++i) (void)storage::multiply(ctx(), a, b);
    const auto conversions =
        storage::stats().format_conversions.load(std::memory_order_relaxed);
    // Two live operands, at most kNumFormats - 1 secondary conversions each;
    // a thrashing dispatcher would instead pay per iteration (>= 12).
    EXPECT_LE(conversions, 2 * (kNumFormats - 1));
}

TEST_F(DispatchStability, TransitiveClosureConversionCountIsBoundedPerRun) {
    const auto adj = data::make_rmat(8, 8, 31);
    algorithms::ClosureStats stats;
    storage::reset_stats();
    (void)algorithms::transitive_closure(ctx(), adj,
                                         algorithms::ClosureStrategy::Squaring,
                                         &stats);
    const auto conversions =
        storage::stats().format_conversions.load(std::memory_order_relaxed);
    ASSERT_GT(stats.rounds, 0u);
    // Each squaring round creates at most one fresh handle; hysteresis means
    // a handle converts at most once on the way into the loop's format plus
    // possibly once when the densifying endgame flips the model's choice.
    EXPECT_LE(conversions, 2 * stats.rounds + 4);
}

}  // namespace
}  // namespace spbla
