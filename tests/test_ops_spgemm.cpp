#include <gtest/gtest.h>

#include <vector>

#include "helpers.hpp"
#include "ops/ewise_add.hpp"
#include "ops/spgemm.hpp"

namespace spbla {
namespace {

using testing::ctx;
using testing::random_csr;
using testing::seq_ctx;

// Op suites run on the shared contexts; CheckedContext asserts the
// MemoryTracker leak report is clean after every test.
using SpGemm = ::spbla::testing::CheckedContext;

CsrMatrix reference_multiply(const CsrMatrix& a, const CsrMatrix& b) {
    return to_csr(to_dense(a).multiply(to_dense(b)));
}

TEST_F(SpGemm, EmptyTimesEmpty) {
    const CsrMatrix a{3, 4}, b{4, 5};
    const auto c = ops::multiply(ctx(), a, b);
    EXPECT_EQ(c.nrows(), 3u);
    EXPECT_EQ(c.ncols(), 5u);
    EXPECT_EQ(c.nnz(), 0u);
}

TEST_F(SpGemm, DimensionMismatchThrows) {
    const CsrMatrix a{3, 4}, b{5, 5};
    EXPECT_THROW((void)ops::multiply(ctx(), a, b), Error);
}

TEST_F(SpGemm, IdentityIsNeutral) {
    const auto a = random_csr(20, 20, 0.2, 77);
    const auto i = CsrMatrix::identity(20);
    EXPECT_EQ(ops::multiply(ctx(), a, i), a);
    EXPECT_EQ(ops::multiply(ctx(), i, a), a);
}

TEST_F(SpGemm, SingleCellChain) {
    // (0,1) x (1,2) -> (0,2)
    const auto a = CsrMatrix::from_coords(3, 3, {{0, 1}});
    const auto b = CsrMatrix::from_coords(3, 3, {{1, 2}});
    const auto c = ops::multiply(ctx(), a, b);
    EXPECT_EQ(c.to_coords(), (std::vector<Coord>{{0, 2}}));
}

TEST_F(SpGemm, BooleanSaturationNoDuplicates) {
    // Two distinct middle vertices produce the same output cell; the Boolean
    // semiring must collapse them into one.
    const auto a = CsrMatrix::from_coords(2, 3, {{0, 0}, {0, 1}});
    const auto b = CsrMatrix::from_coords(3, 2, {{0, 1}, {1, 1}});
    const auto c = ops::multiply(ctx(), a, b);
    EXPECT_EQ(c.nnz(), 1u);
    EXPECT_TRUE(c.get(0, 1));
}

TEST_F(SpGemm, RectangularShapes) {
    const auto a = random_csr(7, 50, 0.15, 101);
    const auto b = random_csr(50, 13, 0.15, 102);
    EXPECT_EQ(ops::multiply(ctx(), a, b), reference_multiply(a, b));
}

TEST_F(SpGemm, MultiplyAddAccumulates) {
    const auto c0 = random_csr(20, 20, 0.1, 1);
    const auto a = random_csr(20, 20, 0.1, 2);
    const auto b = random_csr(20, 20, 0.1, 3);
    const auto result = ops::multiply_add(ctx(), c0, a, b);
    const auto expected = ops::ewise_add(ctx(), c0, reference_multiply(a, b));
    EXPECT_EQ(result, expected);
}

TEST_F(SpGemm, MultiplyAddShapeCheck) {
    const CsrMatrix c{3, 3}, a{3, 4}, b{4, 4};
    EXPECT_THROW((void)ops::multiply_add(ctx(), c, a, b), Error);
    const CsrMatrix ok{3, 4};
    EXPECT_NO_THROW((void)ops::multiply_add(ctx(), ok, a, b));
}

TEST_F(SpGemm, SequentialAndParallelBackendsAgree) {
    const auto a = random_csr(60, 60, 0.08, 55);
    const auto b = random_csr(60, 60, 0.08, 56);
    EXPECT_EQ(ops::multiply(ctx(), a, b), ops::multiply(seq_ctx(), a, b));
}

TEST_F(SpGemm, DenseRowFallbackProducesSameResult) {
    // A dense row (bipartite hub) exceeds the dense-row threshold.
    std::vector<Coord> coords;
    for (Index j = 0; j < 300; ++j) coords.push_back({0, j});
    const auto a = CsrMatrix::from_coords(2, 300, coords);
    const auto b = random_csr(300, 300, 0.05, 57);

    ops::SpGemmOptions with_binning;
    ops::SpGemmOptions without_binning;
    without_binning.use_binning = false;
    const auto c1 = ops::multiply(ctx(), a, b, with_binning);
    const auto c2 = ops::multiply(ctx(), a, b, without_binning);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(c1, reference_multiply(a, b));
}

TEST_F(SpGemm, TinyRowPathAgrees) {
    ops::SpGemmOptions all_tiny;
    all_tiny.tiny_row_threshold = 0xFFFFFFFFu;  // force the sort-merge path
    const auto a = random_csr(40, 40, 0.1, 58);
    const auto b = random_csr(40, 40, 0.1, 59);
    EXPECT_EQ(ops::multiply(ctx(), a, b, all_tiny), reference_multiply(a, b));
}

TEST_F(SpGemm, HashOnlyPathAgrees) {
    ops::SpGemmOptions hash_only;
    hash_only.tiny_row_threshold = 0;  // no tiny rows
    hash_only.use_binning = false;     // no dense fallback
    const auto a = random_csr(40, 40, 0.1, 60);
    const auto b = random_csr(40, 40, 0.1, 61);
    EXPECT_EQ(ops::multiply(ctx(), a, b, hash_only), reference_multiply(a, b));
}

TEST_F(SpGemm, LoadFactorExtremesAgree) {
    const auto a = random_csr(50, 50, 0.1, 62);
    const auto b = random_csr(50, 50, 0.1, 63);
    for (const double load : {0.1, 0.5, 0.99}) {
        ops::SpGemmOptions opts;
        opts.hash_load_factor = load;
        EXPECT_EQ(ops::multiply(ctx(), a, b, opts), reference_multiply(a, b))
            << "load factor " << load;
    }
}

TEST_F(SpGemm, LeavesNoTrackedMemoryBehind) {
    backend::Context local{backend::Policy::Sequential};
    const auto a = random_csr(30, 30, 0.2, 64);
    const auto b = random_csr(30, 30, 0.2, 65);
    (void)ops::multiply(local, a, b);
    EXPECT_EQ(local.tracker().current_bytes(), 0u);
    EXPECT_GT(local.tracker().peak_bytes(), 0u);
}

// Property sweep: random matrices across shapes and densities must match
// the dense reference on both backends.
struct MultiplyCase {
    Index m, k, n;
    double da, db;
    std::uint64_t seed;
};

class SpGemmSweep : public ::spbla::testing::CheckedContextWithParam<MultiplyCase> {};

TEST_P(SpGemmSweep, MatchesDenseReference) {
    const auto p = GetParam();
    const auto a = random_csr(p.m, p.k, p.da, p.seed);
    const auto b = random_csr(p.k, p.n, p.db, p.seed + 1);
    const auto expected = reference_multiply(a, b);
    const auto got = ops::multiply(ctx(), a, b);
    got.validate();
    EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpGemmSweep,
    ::testing::Values(MultiplyCase{1, 1, 1, 1.0, 1.0, 1},
                      MultiplyCase{10, 10, 10, 0.05, 0.05, 2},
                      MultiplyCase{10, 10, 10, 0.9, 0.9, 3},
                      MultiplyCase{33, 65, 17, 0.1, 0.2, 4},
                      MultiplyCase{100, 100, 100, 0.02, 0.02, 5},
                      MultiplyCase{100, 5, 100, 0.3, 0.3, 6},
                      MultiplyCase{5, 100, 5, 0.3, 0.3, 7},
                      MultiplyCase{128, 128, 128, 0.08, 0.01, 8},
                      MultiplyCase{64, 256, 64, 0.05, 0.05, 9},
                      MultiplyCase{50, 50, 50, 0.5, 0.5, 10}));

}  // namespace
}  // namespace spbla
