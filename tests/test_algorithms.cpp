#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/closure.hpp"
#include "algorithms/components.hpp"
#include "algorithms/triangles.hpp"
#include "data/worstcase.hpp"
#include "helpers.hpp"

namespace spbla::algorithms {
namespace {

using testing::ctx;
using testing::random_matrix;

/// Floyd-Warshall style reachability oracle.
DenseMatrix closure_reference(const Matrix& adj) {
    auto d = to_dense(adj.csr());
    const Index n = adj.nrows();
    for (Index k = 0; k < n; ++k) {
        for (Index i = 0; i < n; ++i) {
            if (!d.get(i, k)) continue;
            for (Index j = 0; j < n; ++j) {
                if (d.get(k, j)) d.set(i, j);
            }
        }
    }
    return d;
}

TEST(Closure, RequiresSquareMatrix) {
    const Matrix m{3, 4};
    EXPECT_THROW((void)transitive_closure(ctx(), m), Error);
}

TEST(Closure, EmptyGraphStaysEmpty) {
    const Matrix m{5, 5};
    EXPECT_EQ(transitive_closure(ctx(), m).nnz(), 0u);
}

TEST(Closure, PathGraphClosesToUpperTriangle) {
    const auto g = data::make_path(5);
    const auto c = transitive_closure(ctx(), g.matrix("a"));
    // Path 0->1->2->3->4: closure has all pairs i < j.
    EXPECT_EQ(c.nnz(), 10u);
    for (Index i = 0; i < 5; ++i) {
        for (Index j = 0; j < 5; ++j) {
            EXPECT_EQ(c.get(i, j), i < j) << i << "," << j;
        }
    }
}

TEST(Closure, CycleClosesToComplete) {
    const auto g = data::make_cycle(6);
    const auto c = transitive_closure(ctx(), g.matrix("a"));
    EXPECT_EQ(c.nnz(), 36u);  // every vertex reaches every vertex incl. itself
}

TEST(Closure, StrategiesAgree) {
    for (const auto seed : {1, 2, 3}) {
        const auto m = random_matrix(40, 40, 0.05, seed);
        ClosureStats sq, lin, dl;
        const auto a = transitive_closure(ctx(), m, ClosureStrategy::Squaring, &sq);
        const auto b = transitive_closure(ctx(), m, ClosureStrategy::Linear, &lin);
        const auto c = transitive_closure(ctx(), m, ClosureStrategy::Delta, &dl);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a, c);
        EXPECT_EQ(sq.result_nnz, a.nnz());
        // Squaring needs at most as many rounds as the linear strategy.
        EXPECT_LE(sq.rounds, lin.rounds + 1);
    }
}

TEST(Closure, DeltaFrontierWalksTheDiameter) {
    const auto g = data::make_path(32);
    ClosureStats stats;
    const auto c = transitive_closure(ctx(), g.matrix("a"), ClosureStrategy::Delta,
                                      &stats);
    EXPECT_EQ(c.nnz(), 32u * 31u / 2);
    // One round per frontier generation: path of 31 edges -> 31 rounds
    // (the last producing an empty frontier).
    EXPECT_GE(stats.rounds, 30u);
    EXPECT_LE(stats.rounds, 32u);
}

TEST(Closure, DeltaOnEmptyAndCyclicGraphs) {
    EXPECT_EQ(transitive_closure(ctx(), Matrix{4, 4}, ClosureStrategy::Delta).nnz(),
              0u);
    const auto g = data::make_cycle(5);
    EXPECT_EQ(
        transitive_closure(ctx(), g.matrix("a"), ClosureStrategy::Delta).nnz(), 25u);
}

TEST(Closure, SquaringNeedsLogRoundsOnLongPath) {
    const auto g = data::make_path(64);
    ClosureStats sq, lin;
    (void)transitive_closure(ctx(), g.matrix("a"), ClosureStrategy::Squaring, &sq);
    (void)transitive_closure(ctx(), g.matrix("a"), ClosureStrategy::Linear, &lin);
    EXPECT_LE(sq.rounds, 8u);    // ~log2(63) + stabilisation round
    EXPECT_GE(lin.rounds, 62u);  // linear walks the whole diameter
}

TEST(Closure, MatchesFloydWarshallOnRandomGraphs) {
    for (const auto seed : {10, 11, 12, 13}) {
        const auto m = random_matrix(30, 30, 0.06, seed);
        EXPECT_EQ(to_dense(transitive_closure(ctx(), m).csr()), closure_reference(m));
    }
}

TEST(Closure, ReflexiveVariantAddsDiagonal) {
    const auto g = data::make_path(4);
    const auto c = reflexive_transitive_closure(ctx(), g.matrix("a"));
    for (Index i = 0; i < 4; ++i) EXPECT_TRUE(c.get(i, i));
    EXPECT_EQ(c.nnz(), 6u + 4u);
}

TEST(Bfs, LevelsOnPathGraph) {
    const auto g = data::make_path(5);
    const auto levels = bfs_levels(ctx(), g.matrix("a"), 0);
    EXPECT_EQ(levels, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Bfs, UnreachableVerticesStayMinusOne) {
    const auto m = Matrix::from_coords(4, 4, {{0, 1}});
    const auto levels = bfs_levels(ctx(), m, 0);
    EXPECT_EQ(levels, (std::vector<int>{0, 1, -1, -1}));
}

TEST(Bfs, TreeLevelsMatchDepth) {
    // make_tree builds child -> parent edges; BFS from a leaf walks up.
    const auto g = data::make_tree(7);
    const auto levels = bfs_levels(ctx(), g.matrix("a"), 6);
    EXPECT_EQ(levels[6], 0);
    EXPECT_EQ(levels[2], 1);  // parent of 6 is (6-1)/2 = 2
    EXPECT_EQ(levels[0], 2);
}

TEST(Bfs, ReachableSetMatchesClosureRow) {
    const auto m = random_matrix(25, 25, 0.08, 77);
    const auto closure = transitive_closure(ctx(), m);
    for (const Index source : {Index{0}, Index{7}, Index{24}}) {
        const auto reach = reachable_from(ctx(), m, source);
        for (Index v = 0; v < 25; ++v) {
            EXPECT_EQ(reach.get(v), closure.get(source, v)) << source << "->" << v;
        }
    }
}

TEST(Components, SingleComponentOnCycle) {
    const auto g = data::make_cycle(8);
    EXPECT_EQ(count_components(ctx(), g.matrix("a")), 1u);
    const auto labels = connected_components(ctx(), g.matrix("a"));
    for (const auto l : labels) EXPECT_EQ(l, 0u);
}

TEST(Components, IsolatedVerticesAreSingletons) {
    const Matrix empty{5, 5};
    EXPECT_EQ(count_components(ctx(), empty), 5u);
}

TEST(Components, DirectedEdgesConnectWeakly) {
    // 0 -> 1, 3 -> 2: two components {0,1} and {2,3}, vertex 4 alone.
    const auto m = Matrix::from_coords(5, 5, {{0, 1}, {3, 2}});
    EXPECT_EQ(count_components(ctx(), m), 3u);
    const auto labels = connected_components(ctx(), m);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[2], labels[3]);
    EXPECT_NE(labels[0], labels[2]);
    EXPECT_EQ(labels[4], 4u);
}

TEST(Components, MatchesUnionFindOnRandomGraphs) {
    for (const auto seed : {21, 22, 23}) {
        const auto m = random_matrix(40, 40, 0.03, seed);
        // Union-find reference.
        std::vector<Index> parent(40);
        for (Index v = 0; v < 40; ++v) parent[v] = v;
        const std::function<Index(Index)> find = [&](Index v) {
            while (parent[v] != v) v = parent[v] = parent[parent[v]];
            return v;
        };
        for (const auto& c : m.to_coords()) parent[find(c.row)] = find(c.col);
        std::set<Index> roots;
        for (Index v = 0; v < 40; ++v) roots.insert(find(v));

        EXPECT_EQ(count_components(ctx(), m), roots.size()) << seed;
        const auto labels = connected_components(ctx(), m);
        for (const auto& c : m.to_coords()) {
            EXPECT_EQ(labels[c.row], labels[c.col]) << seed;
        }
    }
}

TEST(Triangles, TriangleGraphHasOne) {
    const auto m = Matrix::from_coords(
        3, 3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0}});
    EXPECT_EQ(count_triangles(ctx(), m), 1u);
}

TEST(Triangles, PathHasNone) {
    const auto m = Matrix::from_coords(4, 4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}});
    EXPECT_EQ(count_triangles(ctx(), m), 0u);
}

TEST(Triangles, CompleteGraphBinomial) {
    // K6 has C(6,3) = 20 triangles.
    std::vector<Coord> coords;
    for (Index i = 0; i < 6; ++i) {
        for (Index j = 0; j < 6; ++j) {
            if (i != j) coords.push_back({i, j});
        }
    }
    const auto m = Matrix::from_coords(6, 6, std::move(coords));
    EXPECT_EQ(count_triangles(ctx(), m), 20u);
}

TEST(Triangles, MatchesBruteForceOnRandomSymmetric) {
    for (const auto seed : {5, 6}) {
        auto half = random_matrix(20, 20, 0.15, seed);
        std::vector<Coord> sym;
        for (const auto& c : half.to_coords()) {
            if (c.row == c.col) continue;
            sym.push_back(c);
            sym.push_back({c.col, c.row});
        }
        const auto m = Matrix::from_coords(20, 20, std::move(sym));
        const auto d = to_dense(m.csr());
        std::uint64_t expected = 0;
        for (Index i = 0; i < 20; ++i) {
            for (Index j = 0; j < 20; ++j) {
                for (Index k = 0; k < 20; ++k) {
                    if (i < j && j < k && d.get(i, j) && d.get(j, k) && d.get(i, k)) {
                        ++expected;
                    }
                }
            }
        }
        EXPECT_EQ(count_triangles(ctx(), m), expected) << "seed " << seed;
    }
}

}  // namespace
}  // namespace spbla::algorithms
