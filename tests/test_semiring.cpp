#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "helpers.hpp"
#include "ops/ewise_add.hpp"
#include "ops/spgemm.hpp"
#include "semiring/algorithms.hpp"
#include "semiring/valued_csr.hpp"

namespace spbla::semiring {
namespace {

using testing::ctx;
using testing::random_csr;

using MinPlusCsr = ValuedCsr<MinPlus>;
using CountCsr = ValuedCsr<PlusTimes>;
using BoolCsr = ValuedCsr<BoolOrAnd>;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ValuedCsr, TripletsCombineAndDropZeros) {
    const auto m = CountCsr::from_triplets(
        2, 3, {{0, 1, 2}, {0, 1, 3}, {1, 2, 0}, {1, 0, 7}});
    EXPECT_EQ(m.nnz(), 2u);           // (1,2,0) dropped, (0,1) combined
    EXPECT_EQ(m.get(0, 1), 5u);       // 2 + 3
    EXPECT_EQ(m.get(1, 0), 7u);
    EXPECT_EQ(m.get(1, 2), 0u);       // semiring zero for absent cells
}

TEST(ValuedCsr, OutOfRangeRejected) {
    EXPECT_THROW((void)CountCsr::from_triplets(2, 2, {{2, 0, 1}}), Error);
}

TEST(SemiringMultiply, CountingMatchesManual) {
    // Walks of length 2 on the diamond 0->{1,2}->3: exactly 2.
    const auto adj = CountCsr::from_triplets(
        4, 4, {{0, 1, 1}, {0, 2, 1}, {1, 3, 1}, {2, 3, 1}});
    const auto sq = multiply(ctx(), adj, adj);
    EXPECT_EQ(sq.get(0, 3), 2u);
    EXPECT_EQ(sq.get(0, 1), 0u);
}

TEST(SemiringMultiply, MinPlusRelaxesPaths) {
    const auto adj = MinPlusCsr::from_triplets(
        3, 3, {{0, 1, 5.0}, {1, 2, 7.0}, {0, 2, 20.0}});
    const auto two_hop = multiply(ctx(), adj, adj);
    EXPECT_DOUBLE_EQ(two_hop.get(0, 2), 12.0);  // 5 + 7 beats nothing here
    const auto relaxed = ewise_add(ctx(), adj, two_hop);
    EXPECT_DOUBLE_EQ(relaxed.get(0, 2), 12.0);  // min(20, 12)
}

TEST(SemiringMultiply, BooleanInstanceMatchesNativeKernel) {
    const auto a = random_csr(25, 25, 0.15, 11);
    const auto b = random_csr(25, 25, 0.15, 12);
    const auto generic = multiply(ctx(), lift<BoolOrAnd>(a), lift<BoolOrAnd>(b));
    const auto native = spbla::ops::multiply(ctx(), a, b);
    EXPECT_EQ(generic.nnz(), native.nnz());
    for (const auto& c : native.to_coords()) {
        EXPECT_TRUE(generic.get(c.row, c.col));
    }
}

TEST(SemiringEwiseAdd, BooleanInstanceMatchesNativeKernel) {
    const auto a = random_csr(30, 30, 0.2, 13);
    const auto b = random_csr(30, 30, 0.2, 14);
    const auto generic = ewise_add(ctx(), lift<BoolOrAnd>(a), lift<BoolOrAnd>(b));
    EXPECT_EQ(generic.nnz(), spbla::ops::ewise_add(ctx(), a, b).nnz());
}

/// Floyd-Warshall oracle for APSP.
std::vector<std::vector<double>> floyd_warshall(const MinPlusCsr& adj) {
    const Index n = adj.nrows();
    std::vector<std::vector<double>> d(n, std::vector<double>(n, kInf));
    for (Index i = 0; i < n; ++i) {
        for (std::size_t t = 0; t < adj.row(i).size(); ++t) {
            d[i][adj.row(i)[t]] = adj.row_vals(i)[t];
        }
    }
    for (Index k = 0; k < n; ++k) {
        for (Index i = 0; i < n; ++i) {
            for (Index j = 0; j < n; ++j) {
                d[i][j] = std::min(d[i][j], d[i][k] + d[k][j]);
            }
        }
    }
    return d;
}

TEST(Apsp, MatchesFloydWarshallOnRandomGraphs) {
    util::Rng rng{77};
    for (int trial = 0; trial < 4; ++trial) {
        const Index n = 12 + static_cast<Index>(rng.below(12));
        std::vector<std::tuple<Index, Index, double>> triplets;
        for (std::size_t k = 0; k < static_cast<std::size_t>(n) * 3; ++k) {
            triplets.emplace_back(static_cast<Index>(rng.below(n)),
                                  static_cast<Index>(rng.below(n)),
                                  1.0 + static_cast<double>(rng.below(9)));
        }
        const auto adj = MinPlusCsr::from_triplets(n, n, std::move(triplets));
        const auto result = apsp(ctx(), adj);
        const auto oracle = floyd_warshall(adj);
        for (Index i = 0; i < n; ++i) {
            for (Index j = 0; j < n; ++j) {
                ASSERT_DOUBLE_EQ(result.get(i, j), oracle[i][j])
                    << "trial " << trial << " pair " << i << "," << j;
            }
        }
    }
}

TEST(Apsp, ReportsRoundsAndHandlesChains) {
    std::vector<std::tuple<Index, Index, double>> triplets;
    for (Index v = 0; v + 1 < 16; ++v) triplets.emplace_back(v, v + 1, 2.0);
    const auto adj = MinPlusCsr::from_triplets(16, 16, std::move(triplets));
    std::size_t rounds = 0;
    const auto d = apsp(ctx(), adj, &rounds);
    EXPECT_DOUBLE_EQ(d.get(0, 15), 30.0);
    EXPECT_LE(rounds, 6u);  // squaring-style doubling
}

TEST(CountWalks, PowersOfACycle) {
    // On a 3-cycle there is exactly one walk of any length from u to
    // (u + len) mod 3.
    const auto adj = CountCsr::from_triplets(3, 3, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}});
    for (Index len = 1; len <= 6; ++len) {
        const auto p = count_walks(ctx(), adj, len);
        for (Index u = 0; u < 3; ++u) {
            EXPECT_EQ(p.get(u, (u + len) % 3), 1u) << len;
        }
        EXPECT_EQ(p.nnz(), 3u) << len;
    }
}

TEST(CountWalks, BinaryTreeFanout) {
    // Complete binary out-tree of depth 3: 2^k walks of length k from the
    // root (to all level-k nodes combined).
    std::vector<std::tuple<Index, Index, std::uint64_t>> triplets;
    for (Index v = 0; v < 7; ++v) {
        triplets.emplace_back(v, 2 * v + 1, 1);
        triplets.emplace_back(v, 2 * v + 2, 1);
    }
    const auto adj = CountCsr::from_triplets(15, 15, std::move(triplets));
    const auto p3 = count_walks(ctx(), adj, 3);
    std::uint64_t from_root = 0;
    for (Index v = 0; v < 15; ++v) from_root += p3.get(0, v);
    EXPECT_EQ(from_root, 8u);
}

TEST(SemiringVxm, MatchesManualExpansion) {
    const auto adj = MinPlusCsr::from_triplets(
        3, 3, {{0, 1, 4.0}, {0, 2, 9.0}, {1, 2, 3.0}});
    DenseVector<MinPlus> x(3, kInf);
    x[0] = 0.0;
    const auto y = vxm<MinPlus>(ctx(), x, adj);
    EXPECT_DOUBLE_EQ(y[1], 4.0);
    EXPECT_DOUBLE_EQ(y[2], 9.0);
    EXPECT_EQ(y[0], kInf);
}

TEST(Sssp, MatchesApspRow) {
    util::Rng rng{88};
    const Index n = 20;
    std::vector<std::tuple<Index, Index, double>> triplets;
    for (std::size_t k = 0; k < 60; ++k) {
        triplets.emplace_back(static_cast<Index>(rng.below(n)),
                              static_cast<Index>(rng.below(n)),
                              1.0 + static_cast<double>(rng.below(7)));
    }
    const auto adj = MinPlusCsr::from_triplets(n, n, std::move(triplets));
    const auto all = apsp(ctx(), adj);
    for (const Index source : {Index{0}, Index{7}, Index{19}}) {
        const auto dist = sssp(ctx(), adj, source);
        EXPECT_DOUBLE_EQ(dist[source], 0.0);
        for (Index v = 0; v < n; ++v) {
            if (v == source) continue;
            EXPECT_DOUBLE_EQ(dist[v], all.get(source, v)) << source << "->" << v;
        }
    }
}

TEST(Sssp, UnreachableStaysInfinite) {
    const auto adj = MinPlusCsr::from_triplets(3, 3, {{0, 1, 2.0}});
    const auto dist = sssp(ctx(), adj, 0);
    EXPECT_DOUBLE_EQ(dist[1], 2.0);
    EXPECT_EQ(dist[2], kInf);
    EXPECT_THROW((void)sssp(ctx(), adj, 3), Error);
}

TEST(CountWalks, RejectsBadArguments) {
    const auto adj = CountCsr::from_triplets(2, 2, {{0, 1, 1}});
    EXPECT_THROW((void)count_walks(ctx(), adj, 0), Error);
    const auto rect = CountCsr::from_triplets(2, 3, {{0, 1, 1}});
    EXPECT_THROW((void)count_walks(ctx(), rect, 2), Error);
}

}  // namespace
}  // namespace spbla::semiring
