#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "backend/context.hpp"
#include "backend/device_buffer.hpp"
#include "backend/memory_tracker.hpp"

namespace spbla::backend {
namespace {

TEST(MemoryTracker, TracksCurrentAndPeak) {
    MemoryTracker t;
    t.on_alloc(100);
    t.on_alloc(50);
    EXPECT_EQ(t.current_bytes(), 150u);
    EXPECT_EQ(t.peak_bytes(), 150u);
    t.on_free(100);
    EXPECT_EQ(t.current_bytes(), 50u);
    EXPECT_EQ(t.peak_bytes(), 150u);  // high-water mark persists
    t.on_alloc(10);
    EXPECT_EQ(t.peak_bytes(), 150u);
}

TEST(MemoryTracker, ResetPeakDropsToCurrent) {
    MemoryTracker t;
    t.on_alloc(100);
    t.on_free(100);
    t.reset_peak();
    EXPECT_EQ(t.peak_bytes(), 0u);
}

TEST(MemoryTracker, CountsAllocations) {
    MemoryTracker t;
    t.on_alloc(1);
    t.on_alloc(1);
    EXPECT_EQ(t.alloc_count(), 2u);
}

TEST(DeviceBuffer, ChargesAndReleasesTracker) {
    MemoryTracker t;
    {
        DeviceBuffer<std::uint32_t> buf{&t, 10};
        EXPECT_EQ(buf.size(), 10u);
        EXPECT_EQ(t.current_bytes(), 40u);
    }
    EXPECT_EQ(t.current_bytes(), 0u);
    EXPECT_EQ(t.peak_bytes(), 40u);
}

TEST(DeviceBuffer, CopyChargesTwice) {
    MemoryTracker t;
    DeviceBuffer<std::uint64_t> a{&t, 4};
    DeviceBuffer<std::uint64_t> b{a};
    EXPECT_EQ(t.current_bytes(), 2 * 4 * sizeof(std::uint64_t));
    b.release();
    EXPECT_EQ(t.current_bytes(), 4 * sizeof(std::uint64_t));
    a.release();
    EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(DeviceBuffer, MoveDoesNotDoubleCharge) {
    MemoryTracker t;
    DeviceBuffer<int> a{&t, 8};
    const auto bytes = t.current_bytes();
    DeviceBuffer<int> b{std::move(a)};
    EXPECT_EQ(t.current_bytes(), bytes);
    b.release();
    EXPECT_EQ(t.current_bytes(), 0u);
}

TEST(DeviceBuffer, ElementsAreWritable) {
    MemoryTracker t;
    DeviceBuffer<int> buf{&t, 5};
    for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<int>(i * i);
    EXPECT_EQ(buf[3], 9);
}

TEST(Context, SequentialPolicyHasNoPool) {
    Context ctx{Policy::Sequential};
    EXPECT_EQ(ctx.pool(), nullptr);
    EXPECT_EQ(ctx.policy(), Policy::Sequential);
}

TEST(Context, ParallelPolicyHasPool) {
    Context ctx{Policy::Parallel, 2};
    ASSERT_NE(ctx.pool(), nullptr);
    EXPECT_EQ(ctx.pool()->size(), 2u);
}

TEST(Context, ParallelForWorksUnderBothPolicies) {
    for (const auto policy : {Policy::Sequential, Policy::Parallel}) {
        Context ctx{policy, 2};
        std::vector<std::atomic<int>> hits(100);
        ctx.parallel_for(hits.size(), 8, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
}

TEST(Context, AllocChargesItsTracker) {
    Context ctx{Policy::Sequential};
    {
        auto buf = ctx.alloc<std::uint32_t>(100);
        EXPECT_EQ(ctx.tracker().current_bytes(), 400u);
    }
    EXPECT_EQ(ctx.tracker().current_bytes(), 0u);
}

TEST(Context, DefaultContextIsSingleton) {
    EXPECT_EQ(&default_context(), &default_context());
}

}  // namespace
}  // namespace spbla::backend
