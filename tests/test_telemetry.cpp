/// \file test_telemetry.cpp
/// \brief spbla::telemetry — sharded registry arithmetic under pool
/// concurrency, log2 bucket boundaries, quantile estimation, JSON and
/// Prometheus exporters, the crash flight ring, and the dispatcher's
/// always-on instrumentation invariants.
///
/// The registry is process-global and other suites in this binary would
/// pollute it, so every test that asserts absolute values first calls
/// telemetry::reset() and computes deltas from a fresh snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "backend/context.hpp"
#include "helpers.hpp"
#include "storage/dispatch.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metric_names.hpp"
#include "telemetry/metrics.hpp"
#include "util/thread_pool.hpp"

namespace spbla {
namespace {

using testing::ctx;

// --------------------------- bucket arithmetic -----------------------------

TEST(TelemetryBuckets, BucketOfMatchesBitWidth) {
    EXPECT_EQ(telemetry::bucket_of(0), 0u);
    EXPECT_EQ(telemetry::bucket_of(1), 1u);
    EXPECT_EQ(telemetry::bucket_of(2), 2u);
    EXPECT_EQ(telemetry::bucket_of(3), 2u);
    EXPECT_EQ(telemetry::bucket_of(4), 3u);
    EXPECT_EQ(telemetry::bucket_of(7), 3u);
    EXPECT_EQ(telemetry::bucket_of(8), 4u);
    EXPECT_EQ(telemetry::bucket_of(1023), 10u);
    EXPECT_EQ(telemetry::bucket_of(1024), 11u);
    EXPECT_EQ(telemetry::bucket_of(~std::uint64_t{0}),
              telemetry::kHistogramBuckets - 1);
}

TEST(TelemetryBuckets, EveryBucketBoundaryRoundTrips) {
    // For each bucket i, the inclusive upper bound must land in bucket i and
    // upper+1 in bucket i+1 (except at the 64-bit ceiling).
    for (std::size_t i = 0; i < telemetry::kHistogramBuckets; ++i) {
        const std::uint64_t upper = telemetry::bucket_upper(i);
        EXPECT_EQ(telemetry::bucket_of(upper), i) << "bucket " << i;
        if (i + 1 < telemetry::kHistogramBuckets) {
            EXPECT_EQ(telemetry::bucket_of(upper + 1), i + 1) << "bucket " << i;
        }
    }
    EXPECT_EQ(telemetry::bucket_upper(0), 0u);
    EXPECT_EQ(telemetry::bucket_upper(1), 1u);
    EXPECT_EQ(telemetry::bucket_upper(4), 15u);
}

TEST(TelemetryBuckets, QuantileReturnsBucketUpperAtNearestRank) {
    telemetry::HistogramSnapshot hist;
    EXPECT_EQ(hist.quantile(0.5), 0u);  // empty histogram

    // 90 observations of 1 (bucket 1) and 10 of 1000 (bucket 10): the p50
    // lands in bucket 1, the p95 and p99 in bucket 10.
    hist.count = 100;
    hist.buckets[telemetry::bucket_of(1)] = 90;
    hist.buckets[telemetry::bucket_of(1000)] = 10;
    EXPECT_EQ(hist.quantile(0.50), telemetry::bucket_upper(1));
    EXPECT_EQ(hist.quantile(0.90), telemetry::bucket_upper(1));
    EXPECT_EQ(hist.quantile(0.95), telemetry::bucket_upper(10));
    EXPECT_EQ(hist.quantile(0.99), telemetry::bucket_upper(10));
}

// ----------------------------- registry ------------------------------------

TEST(TelemetryRegistry, CountersAndHistogramsAggregate) {
    telemetry::reset();
    telemetry::count(telemetry::Counter::ProfSpans, 3);
    telemetry::count(telemetry::Counter::ProfSpans);
    telemetry::observe(telemetry::Histogram::ProfSpanNs, 0);
    telemetry::observe(telemetry::Histogram::ProfSpanNs, 5);
    telemetry::observe(telemetry::Histogram::ProfSpanNs, 300);

    const auto snap = telemetry::snapshot();
    EXPECT_EQ(snap.counter(telemetry::Counter::ProfSpans), 4u);
    const auto& hist = snap.histogram(telemetry::Histogram::ProfSpanNs);
    EXPECT_EQ(hist.count, 3u);
    EXPECT_EQ(hist.sum, 305u);
    EXPECT_EQ(hist.max, 300u);
    EXPECT_EQ(hist.buckets[telemetry::bucket_of(0)], 1u);
    EXPECT_EQ(hist.buckets[telemetry::bucket_of(5)], 1u);
    EXPECT_EQ(hist.buckets[telemetry::bucket_of(300)], 1u);

    telemetry::reset();
    const auto clean = telemetry::snapshot();
    EXPECT_EQ(clean.counter(telemetry::Counter::ProfSpans), 0u);
    EXPECT_EQ(clean.histogram(telemetry::Histogram::ProfSpanNs).count, 0u);
}

TEST(TelemetryRegistry, GaugeSemantics) {
    telemetry::gauge_set(telemetry::Gauge::PoolQueueDepth, 7);
    EXPECT_EQ(telemetry::gauge_add(telemetry::Gauge::PoolQueueDepth, -3), 4);
    telemetry::gauge_max(telemetry::Gauge::PoolQueueDepth, 2);  // no-op, lower
    EXPECT_EQ(telemetry::snapshot().gauge(telemetry::Gauge::PoolQueueDepth), 4);
    telemetry::gauge_max(telemetry::Gauge::PoolQueueDepth, 9);
    EXPECT_EQ(telemetry::snapshot().gauge(telemetry::Gauge::PoolQueueDepth), 9);
    telemetry::gauge_set(telemetry::Gauge::PoolQueueDepth, 0);
}

TEST(TelemetryRegistry, ResetRebaselinesPeakToLive) {
    const auto live0 =
        telemetry::snapshot().gauge(telemetry::Gauge::MemLiveBytes);
    telemetry::gauge_max(telemetry::Gauge::MemPeakBytes, live0 + (1 << 20));
    telemetry::reset();
    const auto snap = telemetry::snapshot();
    EXPECT_EQ(snap.gauge(telemetry::Gauge::MemPeakBytes),
              snap.gauge(telemetry::Gauge::MemLiveBytes));
}

/// 8 pool workers hammer the same counter, histogram and gauge; the
/// aggregated totals must be exact (the shards are per-thread, so this is
/// the test that a shard is never lost or double-merged). Runs under the
/// `parallel` TSan label.
TEST(TelemetryRegistry, ExactUnderPoolConcurrency) {
    telemetry::reset();
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;

    util::ThreadPool pool(kThreads);
    pool.run_dynamic(kThreads, [&](std::size_t t) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            telemetry::count(telemetry::Counter::ProfSpans);
            telemetry::observe(telemetry::Histogram::ProfSpanNs, t + 1);
            telemetry::gauge_add(telemetry::Gauge::PoolInFlight, 1);
            telemetry::gauge_add(telemetry::Gauge::PoolInFlight, -1);
        }
    });
    pool.wait_idle();

    const auto snap = telemetry::snapshot();
    EXPECT_EQ(snap.counter(telemetry::Counter::ProfSpans),
              kThreads * kPerThread);
    const auto& hist = snap.histogram(telemetry::Histogram::ProfSpanNs);
    EXPECT_EQ(hist.count, kThreads * kPerThread);
    std::uint64_t bucket_sum = 0;
    for (const auto b : hist.buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, hist.count);
    EXPECT_EQ(snap.gauge(telemetry::Gauge::PoolInFlight), 0);
    telemetry::reset();
}

// ----------------------------- exporters -----------------------------------

TEST(TelemetryExport, JsonEscaping) {
    EXPECT_EQ(telemetry::json_escape("plain"), "plain");
    EXPECT_EQ(telemetry::json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(telemetry::json_escape("tab\there"), "tab\\there");
    EXPECT_EQ(telemetry::json_escape(std::string("nul\0byte", 8)),
              "nul\\u0000byte");
}

TEST(TelemetryExport, JsonCarriesSchemaAndRecordedValues) {
    telemetry::reset();
    telemetry::count(telemetry::Counter::DispatchOps, 12);
    telemetry::observe(telemetry::Histogram::OpNnzIn, 100);

    const auto json = telemetry::to_json(telemetry::snapshot());
    EXPECT_NE(json.find("\"schema\": \"spbla.metrics.v1\""), std::string::npos);
    EXPECT_NE(json.find("\"spbla.dispatch.ops\": 12"), std::string::npos);
    EXPECT_NE(json.find("\"spbla.op.nnz_in\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
    telemetry::reset();
}

TEST(TelemetryExport, PrometheusShapeIsWellFormed) {
    telemetry::reset();
    telemetry::count(telemetry::Counter::DispatchOps, 5);
    telemetry::observe(telemetry::Histogram::OpNnzIn, 3);
    telemetry::observe(telemetry::Histogram::OpNnzIn, 900);

    const auto text = telemetry::to_prometheus(telemetry::snapshot());
    EXPECT_NE(text.find("# TYPE spbla_dispatch_ops counter"),
              std::string::npos);
    EXPECT_NE(text.find("spbla_dispatch_ops 5"), std::string::npos);
    EXPECT_NE(text.find("# TYPE spbla_op_nnz_in histogram"), std::string::npos);
    // Cumulative buckets end in +Inf == _count.
    EXPECT_NE(text.find("spbla_op_nnz_in_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("spbla_op_nnz_in_count 2"), std::string::npos);
    EXPECT_NE(text.find("spbla_op_nnz_in_sum 903"), std::string::npos);
    // Dots never survive into Prometheus metric names.
    EXPECT_EQ(text.find("spbla."), std::string::npos);
    telemetry::reset();
}

TEST(TelemetryExport, ContextSnapshotMatchesFreeFunction) {
    telemetry::reset();
    telemetry::count(telemetry::Counter::DispatchOps, 2);
    const auto snap = backend::Context::metrics_snapshot();
    EXPECT_EQ(snap.counter(telemetry::Counter::DispatchOps), 2u);
    telemetry::reset();
}

// ----------------------------- flight ring ---------------------------------

TEST(TelemetryFlight, RingWrapKeepsNewestInOrder) {
    const auto base = telemetry::flight::total_recorded();
    constexpr std::uint64_t kRecords = telemetry::flight::kCapacity + 70;
    for (std::uint64_t i = 1; i <= kRecords; ++i) {
        telemetry::flight::record("test_op", "csr", 10, 20, i, i * 2, i * 100);
    }
    EXPECT_EQ(telemetry::flight::total_recorded(), base + kRecords);

    const auto records = telemetry::flight::snapshot_records();
    ASSERT_EQ(records.size(), telemetry::flight::kCapacity);
    // Oldest-first, strictly consecutive seq, ending at the global head.
    for (std::size_t i = 1; i < records.size(); ++i) {
        EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
    }
    EXPECT_EQ(records.back().seq, base + kRecords);
    EXPECT_STREQ(records.back().op, "test_op");
    EXPECT_STREQ(records.back().format, "csr");
    EXPECT_EQ(records.back().nnz_in, kRecords);
    EXPECT_EQ(records.back().nnz_out, kRecords * 2);
    EXPECT_EQ(records.back().duration_ns, kRecords * 100);
}

TEST(TelemetryFlight, LongNamesAreTruncatedNotOverflowed) {
    telemetry::flight::record("an_operation_name_far_too_long",
                              "a_format_name_too_long", 1, 1, 0, 0, 0);
    const auto records = telemetry::flight::snapshot_records();
    ASSERT_FALSE(records.empty());
    const auto& last = records.back();
    EXPECT_LT(std::string(last.op).size(), sizeof(last.op));
    EXPECT_LT(std::string(last.format).size(), sizeof(last.format));
    EXPECT_EQ(std::string(last.op).rfind("an_operation", 0), 0u);
}

/// Concurrent recorders racing across a ring wrap: every published slot a
/// reader returns must be internally consistent (seq matches the payload the
/// writer stamped). Runs under the `parallel` TSan label — this is the
/// seqlock protocol's race test.
TEST(TelemetryFlight, ConcurrentRecordAndSnapshot) {
    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 2000;
    util::ThreadPool pool(kThreads);
    pool.run_dynamic(kThreads, [&](std::size_t t) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            telemetry::flight::record("race_op", "coo", 1, 1, t, i, 1);
            if (i % 128 == 0) {
                // Interleave readers with writers mid-wrap.
                const auto records = telemetry::flight::snapshot_records();
                for (std::size_t k = 1; k < records.size(); ++k) {
                    EXPECT_GT(records[k].seq, records[k - 1].seq);
                }
            }
        }
    });
    pool.wait_idle();
}

// ------------------------ dispatcher instrumentation -----------------------

using TelemetryDispatch = spbla::testing::CheckedContext;

TEST_F(TelemetryDispatch, OpsLandInExactlyOneLatencyHistogram) {
    telemetry::reset();
    const auto a = testing::random_matrix(48, 48, 0.10, 7001);
    const auto b = testing::random_matrix(48, 48, 0.12, 7002);

    const auto c = storage::multiply(ctx(), a, b);
    const auto d = storage::ewise_add(ctx(), a, b);
    const auto e = storage::transpose(ctx(), a);
    (void)c; (void)d; (void)e;

    const auto snap = telemetry::snapshot();
    const auto ops = snap.counter(telemetry::Counter::DispatchOps);
    EXPECT_GE(ops, 3u);  // >= because dispatch may convert via other ops
    const std::uint64_t routed =
        snap.histogram(telemetry::Histogram::OpLatencyCsrNs).count +
        snap.histogram(telemetry::Histogram::OpLatencyCooNs).count +
        snap.histogram(telemetry::Histogram::OpLatencyDenseNs).count +
        snap.histogram(telemetry::Histogram::OpLatencyBitBlocksNs).count +
        snap.histogram(telemetry::Histogram::OpLatencyShardedNs).count;
    EXPECT_EQ(routed, ops);
    EXPECT_EQ(snap.histogram(telemetry::Histogram::OpNnzIn).count, ops);
    EXPECT_EQ(snap.histogram(telemetry::Histogram::OpNnzOut).count, ops);

    // The flight ring saw the same ops the histograms timed.
    const auto records = telemetry::flight::snapshot_records();
    ASSERT_FALSE(records.empty());
    bool saw_multiply = false;
    for (const auto& r : records) {
        if (std::string(r.op) == "multiply") saw_multiply = true;
    }
    EXPECT_TRUE(saw_multiply);
    telemetry::reset();
}

TEST_F(TelemetryDispatch, PerFormatPickCountersDominateHistogramCounts) {
    telemetry::reset();
    const auto a = testing::random_matrix(32, 32, 0.15, 7003);
    const auto b = testing::random_matrix(32, 32, 0.15, 7004);
    (void)storage::multiply(ctx(), a, b);
    (void)storage::ewise_mult(ctx(), a, b);

    const auto snap = telemetry::snapshot();
    const struct {
        telemetry::Counter picks;
        telemetry::Histogram latency;
    } routes[] = {
        {telemetry::Counter::DispatchCsr,
         telemetry::Histogram::OpLatencyCsrNs},
        {telemetry::Counter::DispatchCoo,
         telemetry::Histogram::OpLatencyCooNs},
        {telemetry::Counter::DispatchDense,
         telemetry::Histogram::OpLatencyDenseNs},
        {telemetry::Counter::DispatchBitBlocks,
         telemetry::Histogram::OpLatencyBitBlocksNs},
    };
    for (const auto& route : routes) {
        EXPECT_GE(snap.counter(route.picks),
                  snap.histogram(route.latency).count);
    }
    telemetry::reset();
}

TEST_F(TelemetryDispatch, MemoryGaugesTrackTheTracker) {
    telemetry::reset();
    {
        const auto a = testing::random_matrix(64, 64, 0.2, 7005);
        const auto b = storage::multiply(ctx(), a, a);
        (void)b;
        const auto snap = telemetry::snapshot();
        EXPECT_GT(snap.counter(telemetry::Counter::MemAllocs), 0u);
        EXPECT_GE(snap.gauge(telemetry::Gauge::MemPeakBytes),
                  snap.gauge(telemetry::Gauge::MemLiveBytes));
    }
    const auto snap = telemetry::snapshot();
    EXPECT_GE(snap.counter(telemetry::Counter::MemFrees), 0u);
    telemetry::reset();
}

}  // namespace
}  // namespace spbla
