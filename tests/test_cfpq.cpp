#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfpq/azimov.hpp"
#include "cfpq/queries.hpp"
#include "cfpq/tensor.hpp"
#include "cfpq/worklist.hpp"
#include "data/kernel_alias.hpp"
#include "data/rdflike.hpp"
#include "data/worstcase.hpp"
#include "helpers.hpp"
#include "util/rng.hpp"

namespace spbla::cfpq {
namespace {

using testing::ctx;

data::LabeledGraph random_labeled_graph(Index n, const std::vector<std::string>& labels,
                                        std::size_t n_edges, std::uint64_t seed) {
    util::Rng rng{seed};
    std::vector<data::LabeledEdge> edges;
    for (std::size_t k = 0; k < n_edges; ++k) {
        edges.push_back({static_cast<Index>(rng.below(n)),
                         labels[rng.below(labels.size())],
                         static_cast<Index>(rng.below(n))});
    }
    return data::LabeledGraph::from_edges(n, edges);
}

TEST(AzimovCfpq, DyckOnNestedPath) {
    // 0-a->1-a->2-b->3-b->4 with S -> a S b | a b: exactly (1,3) and (0,4).
    const auto g = data::LabeledGraph::from_edges(
        5, {{0, "a", 1}, {1, "a", 2}, {2, "b", 3}, {3, "b", 4}});
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    EXPECT_EQ(index.reachable().to_coords(), (std::vector<Coord>{{0, 4}, {1, 3}}));
}

TEST(AzimovCfpq, EmptyGraphEmptyIndex) {
    const auto g = data::LabeledGraph::from_edges(5, {{0, "x", 1}});
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    EXPECT_EQ(index.reachable().nnz(), 0u);
}

TEST(AzimovCfpq, NullableStartPutsDiagonal) {
    const auto g = data::make_path(3);
    const auto grammar = Grammar::parse("S -> a S | eps\n");
    const auto index = azimov_cfpq(ctx(), g, grammar);
    for (Index i = 0; i < 3; ++i) EXPECT_TRUE(index.reachable().get(i, i));
    EXPECT_TRUE(index.reachable().get(0, 2));
}

TEST(TensorCfpq, DyckOnTwoCyclesMatchesWorklist) {
    const auto g = data::make_two_cycles(4, 3);
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    const auto index = tensor_cfpq(ctx(), g, grammar);
    const auto ref = worklist_cfpq(g, grammar);
    EXPECT_EQ(index.reachable(grammar), ref);
    EXPECT_GT(index.rounds, 1u);
    EXPECT_GT(ref.nnz(), 0u);
}

TEST(TensorCfpq, IncrementalAndRecomputeAgree) {
    const auto g = data::make_two_cycles(6, 5);
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    TensorOptions incremental;
    incremental.incremental_closure = true;
    TensorOptions recompute;
    recompute.incremental_closure = false;
    EXPECT_EQ(tensor_cfpq(ctx(), g, grammar, incremental).reachable(grammar),
              tensor_cfpq(ctx(), g, grammar, recompute).reachable(grammar));
}

TEST(TensorCfpq, HandlesRegexRhsDirectly) {
    // Query with regex RHS (no CNF needed): S -> a (b)* .
    const auto g = data::LabeledGraph::from_edges(
        4, {{0, "a", 1}, {1, "b", 2}, {2, "b", 3}});
    const auto grammar = Grammar::parse("S -> a b*\n");
    const auto index = tensor_cfpq(ctx(), g, grammar);
    const auto& r = index.reachable(grammar);
    EXPECT_TRUE(r.get(0, 1));
    EXPECT_TRUE(r.get(0, 2));
    EXPECT_TRUE(r.get(0, 3));
    EXPECT_EQ(r.nnz(), 3u);
}

TEST(WorklistCfpq, MatchesHandComputedDyck) {
    const auto g = data::LabeledGraph::from_edges(
        5, {{0, "a", 1}, {1, "a", 2}, {2, "b", 3}, {3, "b", 4}});
    const auto grammar = Grammar::parse("S -> a S b | a b\n");
    EXPECT_EQ(worklist_cfpq(g, grammar).to_coords(),
              (std::vector<Coord>{{0, 4}, {1, 3}}));
}

TEST(AllThreeAlgorithms, AgreeOnPaperQueriesOverGeneratedData) {
    struct Case {
        const char* name;
        data::LabeledGraph graph;
        Grammar grammar;
    };
    auto ontology = data::make_ontology(60, 1.0);
    ontology.add_inverse_labels();
    auto geo = data::make_geospecies(60, 8);
    geo.add_inverse_labels();
    const auto alias = data::make_alias_graph(30);

    const std::vector<Case> cases = {
        {"g1/ontology", ontology, query_g1()},
        {"g2/ontology", ontology, query_g2()},
        {"geo/geospecies", geo, query_geo()},
        {"ma/alias", alias, query_ma()},
    };
    for (const auto& c : cases) {
        const auto mtx = azimov_cfpq(ctx(), c.graph, c.grammar).reachable();
        const auto tns = tensor_cfpq(ctx(), c.graph, c.grammar).reachable(c.grammar);
        const auto ref = worklist_cfpq(c.graph, c.grammar);
        EXPECT_EQ(mtx, ref) << c.name << ": Mtx vs worklist";
        EXPECT_EQ(tns, ref) << c.name << ": Tns vs worklist";
    }
}

/// Random-grammar random-graph agreement sweep.
struct RandomCase {
    std::uint64_t seed;
};

class CfpqAgreementSweep : public ::testing::TestWithParam<RandomCase> {};

TEST_P(CfpqAgreementSweep, MtxEqualsTnsEqualsWorklist) {
    util::Rng rng{GetParam().seed};
    // Random grammar over {a, b} with 1-2 nonterminals from a template pool.
    const std::vector<std::string> pool = {
        "S -> a S b | a b\n",
        "S -> a S | b\n",
        "S -> S S | a | b\n",
        "S -> a V b\nV -> a? b*\n",
        "S -> V V\nV -> a V | b\n",
        "S -> (a | b) S? (a | b)\n",
        "S -> a (S | b)+ \n",
    };
    const auto grammar = Grammar::parse(pool[rng.below(pool.size())]);
    const auto n = 6 + static_cast<Index>(rng.below(8));
    const auto g = random_labeled_graph(n, {"a", "b"}, n * 2, rng.below(1u << 30));

    const auto ref = worklist_cfpq(g, grammar);
    EXPECT_EQ(azimov_cfpq(ctx(), g, grammar).reachable(), ref) << "Mtx";
    EXPECT_EQ(tensor_cfpq(ctx(), g, grammar).reachable(grammar), ref) << "Tns";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfpqAgreementSweep,
                         ::testing::Values(RandomCase{1}, RandomCase{2}, RandomCase{3},
                                           RandomCase{4}, RandomCase{5}, RandomCase{6},
                                           RandomCase{7}, RandomCase{8}, RandomCase{9},
                                           RandomCase{10}, RandomCase{11},
                                           RandomCase{12}));

TEST(CfpqSemantics, RpqShapedGrammarMatchesClosureSemantics) {
    // A regular grammar evaluated through the CFPQ machinery must match the
    // plain transitive-closure answer: S -> a+ over a path graph.
    const auto g = data::make_path(6);
    const auto grammar = Grammar::parse("S -> a+\n");
    const auto tns = tensor_cfpq(ctx(), g, grammar).reachable(grammar);
    const auto closure = algorithms::transitive_closure(ctx(), g.matrix("a"));
    EXPECT_EQ(tns, closure);
}

}  // namespace
}  // namespace spbla::cfpq
