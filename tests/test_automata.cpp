#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "rpq/dfa.hpp"
#include "rpq/nfa.hpp"
#include "rpq/query_templates.hpp"
#include "rpq/regex.hpp"

namespace spbla::rpq {
namespace {

using util::Rng;

TEST(Glushkov, SymbolAutomatonShape) {
    const auto nfa = glushkov(*parse("a"));
    EXPECT_EQ(nfa.num_states, 2u);  // initial + one position
    EXPECT_FALSE(nfa.accepting[nfa.start]);
    EXPECT_TRUE(nfa.accepts(std::vector<std::string>{"a"}));
    EXPECT_FALSE(nfa.accepts(std::vector<std::string>{"b"}));
    EXPECT_FALSE(nfa.accepts({}));
}

TEST(Glushkov, EpsilonFreeByConstruction) {
    const auto nfa = glushkov(*parse("(a | eps) b*"));
    EXPECT_FALSE(nfa.delta.contains("eps"));
    EXPECT_TRUE(nfa.accepts({}));
}

TEST(Glushkov, StateCountIsPositionsPlusOne) {
    // Glushkov automata have exactly one state per symbol occurrence + 1.
    EXPECT_EQ(glushkov(*parse("a b c")).num_states, 4u);
    EXPECT_EQ(glushkov(*parse("(a | a)* a")).num_states, 4u);
}

TEST(Glushkov, MatrixViewMatchesDelta) {
    const auto nfa = glushkov(*parse("a b"));
    const auto ma = nfa.matrix("a");
    EXPECT_EQ(ma.nrows(), nfa.num_states);
    EXPECT_EQ(ma.nnz(), nfa.delta.at("a").size());
    EXPECT_EQ(nfa.matrix("zz").nnz(), 0u);
}

TEST(Determinize, ProducesDeterministicMoves) {
    const auto dfa = determinize(glushkov(*parse("(a | b)* a")));
    for (const auto& [symbol, edges] : dfa.delta) {
        std::set<Index> froms;
        for (const auto& [from, to] : edges) {
            EXPECT_TRUE(froms.insert(from).second)
                << "two " << symbol << " moves from state " << from;
        }
    }
}

TEST(Minimize, ClassicSuffixLanguage) {
    // (a|b)* a (a|b): minimal DFA has 4 states.
    const auto dfa = minimize(determinize(glushkov(*parse("(a | b)* a (a | b)"))));
    EXPECT_EQ(dfa.num_states, 4u);
}

TEST(Minimize, EmptyLanguageCollapses) {
    const auto dfa = minimize(determinize(glushkov(*rpq::empty())));
    EXPECT_EQ(dfa.num_states, 1u);
    EXPECT_FALSE(dfa.accepts({}));
    EXPECT_FALSE(dfa.accepts(std::vector<std::string>{"a"}));
}

TEST(Minimize, NeverGrows) {
    for (const auto* text : {"a*", "(a | b)+", "a b c", "(a b)* | (c d)*"}) {
        const auto big = determinize(glushkov(*parse(text)));
        const auto small = minimize(big);
        EXPECT_LE(small.num_states, big.num_states) << text;
    }
}

TEST(CompileQuery, EndToEnd) {
    const auto dfa = compile_query("a b* c");
    EXPECT_TRUE(dfa.accepts(std::vector<std::string>{"a", "c"}));
    EXPECT_TRUE(dfa.accepts(std::vector<std::string>{"a", "b", "b", "c"}));
    EXPECT_FALSE(dfa.accepts(std::vector<std::string>{"a", "b"}));
}

/// The central property: regex, Glushkov NFA, raw DFA and minimal DFA agree
/// with the reference matcher on random words, for every Table II template.
class PipelineAgreement : public ::testing::TestWithParam<QueryTemplate> {};

TEST_P(PipelineAgreement, AllRepresentationsAcceptTheSameWords) {
    const auto& tpl = GetParam();
    const std::vector<std::string> alphabet{"a", "b", "c", "d", "e", "f"};
    const auto re = tpl.instantiate(alphabet);
    const auto nfa = glushkov(*re);
    const auto dfa = determinize(nfa);
    const auto min = minimize(dfa);

    Rng rng{static_cast<std::uint64_t>(std::hash<std::string>{}(tpl.name))};
    for (int trial = 0; trial < 200; ++trial) {
        const auto len = rng.below(8);
        const auto w = spbla::testing::random_word(alphabet, len, rng);
        const bool expected = matches(*re, w);
        ASSERT_EQ(nfa.accepts(w), expected) << tpl.name << " NFA";
        ASSERT_EQ(dfa.accepts(w), expected) << tpl.name << " DFA";
        ASSERT_EQ(min.accepts(w), expected) << tpl.name << " minimal DFA";
    }
}

INSTANTIATE_TEST_SUITE_P(Table2, PipelineAgreement,
                         ::testing::ValuesIn(table2_templates()),
                         [](const ::testing::TestParamInfo<QueryTemplate>& info) {
                             std::string name = info.param.name;
                             for (auto& c : name) {
                                 if (c == '^') c = '_';
                             }
                             return name;
                         });

TEST(Templates, TableHasTwentyEightRows) {
    EXPECT_EQ(table2_templates().size(), 28u);
}

TEST(Templates, LookupByName) {
    EXPECT_EQ(template_by_name("Q14").text, "(a b (c d)*)+ (e | f)*");
    EXPECT_THROW((void)template_by_name("Q99"), Error);
}

TEST(Templates, InstantiationSubstitutesLabels) {
    const auto re = template_by_name("Q11^2").instantiate({"works", "likes"});
    EXPECT_TRUE(matches(*re, std::vector<std::string>{"works", "likes"}));
    EXPECT_FALSE(matches(*re, std::vector<std::string>{"a", "b"}));
}

TEST(Templates, TooFewLabelsRejected) {
    EXPECT_THROW((void)template_by_name("Q14").instantiate({"x"}), Error);
}

}  // namespace
}  // namespace spbla::rpq
