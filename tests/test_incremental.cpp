/// \file test_incremental.cpp
/// \brief Differential stream-oracle net for the incremental subsystem.
///
/// Every maintained result (delta overlays, incremental TC / RPQ / CFPQ) is
/// replayed against a from-scratch recompute after *every* batch of random
/// edge-stream schedules — insert-only, delete-only, mixed, duplicate-heavy
/// and no-op batches, batch sizes 1 through 10^3 — over uniform, Zipf-skewed
/// and LUBM-style graphs. Metamorphic checks (a batch followed by its exact
/// inverse) pin the epoch semantics: value-equal but epoch-distinct. The
/// epoch audit sweeps every mutating entry point of storage::Matrix and
/// checks that neither the op memo nor the dist shard cache ever serves a
/// stale entry across a mutation.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/closure.hpp"
#include "cfpq/azimov.hpp"
#include "cfpq/grammar.hpp"
#include "data/labeled_graph.hpp"
#include "data/lubm.hpp"
#include "dist/dist.hpp"
#include "dist/partition.hpp"       // lint:allow(format-leak)
#include "dist/sharded_matrix.hpp"  // lint:allow(format-leak)
#include "helpers.hpp"
#include "incr/delta_matrix.hpp"
#include "incr/incremental.hpp"
#include "incr/memo.hpp"
#include "rpq/dfa.hpp"
#include "rpq/engine.hpp"
#include "storage/dispatch.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace spbla::incr {
namespace {

using spbla::testing::ctx;

/// CheckedContext variant that also drains the process-wide op memo before
/// the leak-balance check — memoized results are charged to the shared
/// contexts' trackers, so a populated memo is not a leak.
class IncrementalNet : public spbla::testing::CheckedContext {
protected:
    void TearDown() override {
        memo().clear();
        CheckedContext::TearDown();
    }
};

using EpochAuditCase = const char*;
class EpochAudit : public spbla::testing::CheckedContextWithParam<EpochAuditCase> {
protected:
    void TearDown() override {
        memo().clear();
        CheckedContextWithParam::TearDown();
    }
};

// ---- schedule generation --------------------------------------------------

enum class Mode { InsertOnly, DeleteOnly, Mixed, Duplicate, NoOp };

struct Batch {
    std::vector<Coord> adds;
    std::vector<Coord> removes;
};

Coord random_cell(Index n, util::Rng& rng) {
    return {static_cast<Index>(rng.below(n)), static_cast<Index>(rng.below(n))};
}

/// One batch of the given mode against the current truth cell set.
Batch make_batch(Mode mode, Index n, std::size_t size, const Matrix& truth,
                 util::Rng& rng) {
    Batch b;
    const auto present = truth.to_coords();
    const auto sample_present = [&]() -> Coord {
        return present[rng.below(present.size())];
    };
    switch (mode) {
        case Mode::InsertOnly:
            for (std::size_t k = 0; k < size; ++k) b.adds.push_back(random_cell(n, rng));
            break;
        case Mode::DeleteOnly:
            if (present.empty()) break;
            for (std::size_t k = 0; k < size; ++k) b.removes.push_back(sample_present());
            break;
        case Mode::Mixed:
            for (std::size_t k = 0; k < size; ++k) {
                if (!present.empty() && rng.chance(0.5)) {
                    b.removes.push_back(sample_present());
                } else {
                    b.adds.push_back(random_cell(n, rng));
                }
            }
            break;
        case Mode::Duplicate: {
            // Repeated coordinates, already-present inserts, absent deletes,
            // and cells named by BOTH arrays (insert must win).
            for (std::size_t k = 0; k < size; ++k) {
                const auto c = !present.empty() && rng.chance(0.4) ? sample_present()
                                                                   : random_cell(n, rng);
                b.adds.push_back(c);
                if (rng.chance(0.5)) b.adds.push_back(c);  // duplicate entry
                if (rng.chance(0.3)) b.removes.push_back(c);  // add beats remove
                if (rng.chance(0.3)) b.removes.push_back(random_cell(n, rng));
            }
            break;
        }
        case Mode::NoOp:
            // Value-level no-ops: re-insert present cells, delete absent ones.
            for (std::size_t k = 0; k < size; ++k) {
                if (!present.empty()) b.adds.push_back(sample_present());
            }
            break;
    }
    return b;
}

Matrix cells(Index nrows, Index ncols, std::vector<Coord> coords) {
    return Matrix::from_coords(nrows, ncols, std::move(coords), ctx());
}

/// Ground-truth batch application: (truth ⊖ removes) ⊕ adds.
Matrix fold(const Matrix& truth, const Batch& b) {
    const auto after =
        storage::ewise_diff(ctx(), truth, cells(truth.nrows(), truth.ncols(), b.removes));
    return storage::ewise_add(ctx(), after, cells(truth.nrows(), truth.ncols(), b.adds));
}

Matrix uniform_graph(Index n, std::size_t edges, std::uint64_t seed) {
    util::Rng rng{seed};
    std::vector<Coord> coords;
    for (std::size_t k = 0; k < edges; ++k) coords.push_back(random_cell(n, rng));
    return cells(n, n, std::move(coords));
}

Matrix zipf_graph(Index n, std::size_t edges, std::uint64_t seed) {
    util::Rng rng{seed};
    util::ZipfSampler sample{static_cast<std::size_t>(n), 1.1};
    std::vector<Coord> coords;
    for (std::size_t k = 0; k < edges; ++k) {
        coords.push_back(
            {static_cast<Index>(sample(rng)), static_cast<Index>(sample(rng))});
    }
    return cells(n, n, std::move(coords));
}

// ---- transitive closure ---------------------------------------------------

void run_closure_schedule(const Matrix& start, Mode mode, std::uint64_t seed,
                          const std::vector<std::size_t>& batch_sizes) {
    const Index n = start.nrows();
    util::Rng rng{seed};
    Matrix truth = start;
    IncrementalClosure inc{ctx(), start};
    for (const auto size : batch_sizes) {
        const auto b = make_batch(mode, n, size, truth, rng);
        truth = fold(truth, b);
        inc.apply(cells(n, n, b.adds), cells(n, n, b.removes));
        ASSERT_EQ(inc.adjacency(), truth)
            << "adjacency diverged (mode " << static_cast<int>(mode) << ", batch "
            << size << ")";
        ASSERT_EQ(inc.closure(), algorithms::transitive_closure(ctx(), truth))
            << "closure diverged from scratch recompute (mode "
            << static_cast<int>(mode) << ", batch " << size << ")";
    }
    EXPECT_EQ(inc.stats().batches, batch_sizes.size());
}

TEST_F(IncrementalNet, ClosureUniformGraphAllModes) {
    const auto g = uniform_graph(32, 64, 11);
    const std::vector<std::size_t> ladder{1, 2, 4, 8, 16, 64};
    for (const auto mode : {Mode::InsertOnly, Mode::DeleteOnly, Mode::Mixed,
                            Mode::Duplicate, Mode::NoOp}) {
        run_closure_schedule(g, mode, 101 + static_cast<std::uint64_t>(mode), ladder);
    }
}

TEST_F(IncrementalNet, ClosureZipfGraphMixedStream) {
    const auto g = zipf_graph(48, 120, 23);
    run_closure_schedule(g, Mode::Mixed, 29, {1, 1, 8, 32, 8, 1, 128});
    run_closure_schedule(g, Mode::Duplicate, 31, {4, 16, 4});
}

TEST_F(IncrementalNet, ClosureLubmGraphInsertDeleteWaves) {
    const auto g = data::make_lubm(1, 7).union_matrix();
    run_closure_schedule(g, Mode::InsertOnly, 37, {1, 16, 64});
    run_closure_schedule(g, Mode::DeleteOnly, 41, {1, 16, 64});
}

TEST_F(IncrementalNet, ClosureThousandCellBatch) {
    // The top rung of the issue's batch-size ladder: one 10^3-cell batch.
    const auto g = uniform_graph(64, 96, 43);
    run_closure_schedule(g, Mode::Mixed, 47, {1000});
}

TEST_F(IncrementalNet, ClosureFromEmptyGraph) {
    run_closure_schedule(Matrix{16, 16, ctx()}, Mode::InsertOnly, 53, {1, 4, 16});
}

TEST_F(IncrementalNet, ClosureDeleteToEmptyAndRegrow) {
    const auto g = uniform_graph(12, 20, 59);
    util::Rng rng{61};
    Matrix truth = g;
    IncrementalClosure inc{ctx(), g};
    // Drain the whole graph...
    inc.apply(Matrix{12, 12, ctx()}, truth);
    truth = cells(12, 12, {});
    ASSERT_EQ(inc.closure(), algorithms::transitive_closure(ctx(), truth));
    EXPECT_TRUE(inc.closure().empty());
    // ...then regrow it edge by edge.
    for (int k = 0; k < 6; ++k) {
        const auto b = make_batch(Mode::InsertOnly, 12, 3, truth, rng);
        truth = fold(truth, b);
        inc.apply(cells(12, 12, b.adds), cells(12, 12, b.removes));
        ASSERT_EQ(inc.closure(), algorithms::transitive_closure(ctx(), truth));
    }
}

TEST_F(IncrementalNet, UpdateClosureHandCraftedBridge) {
    // Two disjoint paths 0→1→2 and 3→4→5; inserting 2→3 bridges them and
    // the new closure must contain every left×right pair.
    const auto adj = cells(6, 6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
    Matrix closure = algorithms::transitive_closure(ctx(), adj);
    const auto add = cells(6, 6, {{2, 3}});
    const auto after = storage::ewise_add(ctx(), adj, add);
    const auto upd =
        update_closure(ctx(), closure, after, add, Matrix{6, 6, ctx()});
    EXPECT_EQ(closure, algorithms::transitive_closure(ctx(), after));
    EXPECT_TRUE(closure.get(0, 5));
    EXPECT_GE(upd.rounds, 1u);
}

TEST_F(IncrementalNet, UpdateClosureHandCraftedCut) {
    // Deleting the middle edge of a path must drop exactly the pairs whose
    // every witness crossed it.
    const auto adj = cells(5, 5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
    Matrix closure = algorithms::transitive_closure(ctx(), adj);
    const auto del = cells(5, 5, {{2, 3}});
    const auto after = storage::ewise_diff(ctx(), adj, del);
    (void)update_closure(ctx(), closure, after, Matrix{5, 5, ctx()}, del);
    EXPECT_EQ(closure, algorithms::transitive_closure(ctx(), after));
    EXPECT_FALSE(closure.get(0, 4));
    EXPECT_TRUE(closure.get(0, 2));
    EXPECT_TRUE(closure.get(3, 4));
}

TEST_F(IncrementalNet, ClosureMetamorphicBatchThenInverse) {
    // Applying a batch and then its exact inverse restores the value.
    const auto g = uniform_graph(24, 60, 67);
    IncrementalClosure inc{ctx(), g};
    const auto closure_before = inc.closure();
    const auto adj_before = inc.adjacency();

    // Effective batch: genuinely new cells in, genuinely present cells out.
    const auto adds = storage::ewise_diff(ctx(), uniform_graph(24, 12, 71), g);
    const auto removes = storage::ewise_mult(ctx(), uniform_graph(24, 40, 73), g);
    ASSERT_FALSE(adds.empty());
    ASSERT_FALSE(removes.empty());

    inc.apply(adds, removes);
    ASSERT_NE(inc.adjacency(), adj_before);
    inc.apply(removes, adds);  // the exact inverse

    EXPECT_EQ(inc.adjacency(), adj_before) << "inverse batch must restore the value";
    EXPECT_EQ(inc.closure(), closure_before);
}

TEST_F(IncrementalNet, MetamorphicRoundTripIsEpochDistinct) {
    // At the storage layer every non-empty batch restamps, so a batch
    // followed by its exact inverse is value-equal but epoch-distinct.
    auto m = uniform_graph(24, 60, 67);
    const auto original = m;
    const auto v0 = m.version();
    const auto adds = storage::ewise_diff(ctx(), uniform_graph(24, 12, 71), m);
    const auto removes = storage::ewise_mult(ctx(), uniform_graph(24, 40, 73), m);
    ASSERT_FALSE(adds.empty());
    ASSERT_FALSE(removes.empty());
    m.apply_delta(adds, removes, ctx());
    const auto v1 = m.version();
    EXPECT_GT(v1, v0);
    m.apply_delta(removes, adds, ctx());
    EXPECT_EQ(m, original) << "inverse batch must restore the value";
    EXPECT_GT(m.version(), v1) << "round-tripped state must carry a fresh epoch";

    // A consolidating overlay inherits the same property: each fold gives
    // the base a fresh epoch even when the value round-trips.
    DeltaMatrix d{original, /*consolidate_fraction=*/0.0};
    d.apply(adds, removes, ctx());
    const auto vb = d.base().version();
    d.apply(removes, adds, ctx());
    EXPECT_EQ(d.base(), original);
    EXPECT_GT(d.base().version(), vb);
}

// ---- RPQ ------------------------------------------------------------------

std::vector<data::LabeledEdge> random_labeled_edges(
    Index n, const std::vector<std::string>& labels, std::size_t count,
    util::Rng& rng) {
    std::vector<data::LabeledEdge> edges;
    for (std::size_t k = 0; k < count; ++k) {
        edges.push_back({static_cast<Index>(rng.below(n)),
                         labels[rng.below(labels.size())],
                         static_cast<Index>(rng.below(n))});
    }
    return edges;
}

using EdgeKey = std::tuple<Index, std::string, Index>;

std::set<EdgeKey> to_keys(const std::vector<data::LabeledEdge>& edges) {
    std::set<EdgeKey> keys;
    for (const auto& e : edges) keys.insert({e.src, e.label, e.dst});
    return keys;
}

data::LabeledGraph keys_to_graph(Index n, const std::set<EdgeKey>& keys) {
    std::vector<data::LabeledEdge> edges;
    for (const auto& [src, label, dst] : keys) edges.push_back({src, label, dst});
    return data::LabeledGraph::from_edges(n, edges);
}

void run_rpq_schedule(Index n, const std::string& query_text, std::uint64_t seed,
                      const std::vector<std::size_t>& batch_sizes, bool with_deletes) {
    const std::vector<std::string> labels{"a", "b", "c"};
    util::Rng rng{seed};
    auto truth = to_keys(random_labeled_edges(n, labels, 3 * n, rng));
    const auto query = rpq::compile_query(query_text);
    IncrementalRpq inc{ctx(), keys_to_graph(n, truth), query};
    for (const auto size : batch_sizes) {
        const auto adds = random_labeled_edges(n, labels, size, rng);
        std::vector<data::LabeledEdge> removes;
        if (with_deletes && !truth.empty()) {
            std::vector<EdgeKey> pool{truth.begin(), truth.end()};
            for (std::size_t k = 0; k < size / 2 + 1; ++k) {
                const auto& [src, label, dst] = pool[rng.below(pool.size())];
                removes.push_back({src, label, dst});
            }
        }
        for (const auto& e : removes) truth.erase({e.src, e.label, e.dst});
        for (const auto& e : adds) truth.insert({e.src, e.label, e.dst});
        inc.apply(adds, removes);
        const auto graph = keys_to_graph(n, truth);
        const auto cg = inc.current_graph();
        std::set<EdgeKey> maintained;
        for (const auto& l : cg.labels()) {
            for (const auto& c : cg.matrix(l).to_coords()) {
                maintained.insert({c.row, l, c.col});
            }
        }
        ASSERT_EQ(maintained, truth)
            << "maintained graph diverged (query " << query_text << ")";
        ASSERT_EQ(inc.reachable(), rpq::evaluate(ctx(), graph, query))
            << "RPQ answers diverged from scratch evaluate (query " << query_text
            << ", batch " << size << ")";
    }
}

TEST_F(IncrementalNet, RpqConcatQueryStream) {
    run_rpq_schedule(16, "a b", 79, {1, 4, 8, 16}, /*with_deletes=*/true);
}

TEST_F(IncrementalNet, RpqStarQueryInsertOnly) {
    run_rpq_schedule(14, "(a | b)+", 83, {1, 2, 8, 32}, /*with_deletes=*/false);
}

TEST_F(IncrementalNet, RpqStarQueryMixedStream) {
    run_rpq_schedule(12, "a* b", 89, {1, 4, 4, 16, 64}, /*with_deletes=*/true);
}

TEST_F(IncrementalNet, RpqAgreesWithReferenceBfsOracle) {
    // Triple-check one stream against the product-automaton BFS as well.
    const std::vector<std::string> labels{"a", "b"};
    util::Rng rng{97};
    const Index n = 10;
    auto truth = to_keys(random_labeled_edges(n, labels, 20, rng));
    const auto query = rpq::compile_query("a (a | b)*");
    IncrementalRpq inc{ctx(), keys_to_graph(n, truth), query};
    for (int round = 0; round < 4; ++round) {
        const auto adds = random_labeled_edges(n, labels, 5, rng);
        for (const auto& e : adds) truth.insert({e.src, e.label, e.dst});
        inc.apply(adds, {});
        const auto graph = keys_to_graph(n, truth);
        ASSERT_EQ(inc.reachable(), rpq::evaluate_reference(graph, query));
    }
}

// ---- CFPQ -----------------------------------------------------------------

void run_cfpq_schedule(Index n, const std::string& grammar_text, std::uint64_t seed,
                       const std::vector<std::size_t>& batch_sizes,
                       bool with_deletes) {
    const std::vector<std::string> labels{"a", "b"};
    util::Rng rng{seed};
    auto truth = to_keys(random_labeled_edges(n, labels, 2 * n, rng));
    const auto grammar = cfpq::Grammar::parse(grammar_text);
    IncrementalCfpq inc{ctx(), keys_to_graph(n, truth), grammar};
    for (const auto size : batch_sizes) {
        const auto adds = random_labeled_edges(n, labels, size, rng);
        std::vector<data::LabeledEdge> removes;
        if (with_deletes && !truth.empty()) {
            std::vector<EdgeKey> pool{truth.begin(), truth.end()};
            for (std::size_t k = 0; k < size / 2 + 1; ++k) {
                const auto& [src, label, dst] = pool[rng.below(pool.size())];
                removes.push_back({src, label, dst});
            }
        }
        for (const auto& e : removes) truth.erase({e.src, e.label, e.dst});
        for (const auto& e : adds) truth.insert({e.src, e.label, e.dst});
        inc.apply(adds, removes);
        const auto graph = keys_to_graph(n, truth);
        ASSERT_EQ(inc.reachable(), cfpq::azimov_cfpq(ctx(), graph, grammar).reachable())
            << "CFPQ answers diverged from scratch recompute (batch " << size << ")";
    }
}

TEST_F(IncrementalNet, CfpqDyckInsertOnlyStream) {
    run_cfpq_schedule(12, "S -> a S b | a b\n", 103, {1, 2, 4, 8, 16},
                      /*with_deletes=*/false);
    EXPECT_EQ(memo().stats().lookups, memo().stats().hits + memo().stats().stores);
}

TEST_F(IncrementalNet, CfpqDyckMixedStreamFallsBackToRebuild) {
    run_cfpq_schedule(10, "S -> a S b | a b\n", 107, {1, 4, 8, 4},
                      /*with_deletes=*/true);
}

TEST_F(IncrementalNet, CfpqNullableStartStream) {
    run_cfpq_schedule(8, "S -> a S | eps\n", 109, {1, 2, 8}, /*with_deletes=*/true);
}

TEST_F(IncrementalNet, CfpqRebuildCounterTracksDeleteBatches) {
    const auto grammar = cfpq::Grammar::parse("S -> a S b | a b\n");
    const auto g = data::LabeledGraph::from_edges(
        5, {{0, "a", 1}, {1, "a", 2}, {2, "b", 3}, {3, "b", 4}});
    IncrementalCfpq inc{ctx(), g, grammar};
    inc.apply({{0, "a", 2}}, {});
    EXPECT_EQ(inc.stats().rebuilds, 0u) << "insert-only batches must not rebuild";
    inc.apply({}, {{0, "a", 1}});
    EXPECT_EQ(inc.stats().rebuilds, 1u) << "delete batches fall back to rebuild";
    const auto graph = data::LabeledGraph::from_edges(
        5, {{1, "a", 2}, {2, "b", 3}, {3, "b", 4}, {0, "a", 2}});
    EXPECT_EQ(inc.reachable(), cfpq::azimov_cfpq(ctx(), graph, grammar).reachable());
}

// ---- DeltaMatrix ----------------------------------------------------------

TEST_F(IncrementalNet, DeltaMatrixNormalizesOverlay) {
    const auto base = cells(8, 8, {{0, 1}, {1, 2}, {2, 3}});
    // A permissive threshold so the overlay is observable before it folds.
    DeltaMatrix d{base, /*consolidate_fraction=*/10.0};
    // Insert one present cell + one new; delete one present + one absent.
    d.apply(cells(8, 8, {{0, 1}, {4, 5}}), cells(8, 8, {{1, 2}, {6, 7}}), ctx());
    EXPECT_EQ(d.pending_adds().to_coords(), (std::vector<Coord>{{4, 5}}));
    EXPECT_EQ(d.pending_dels().to_coords(), (std::vector<Coord>{{1, 2}}));
    EXPECT_EQ(d.nnz(), 3u);
    EXPECT_EQ(d.snapshot(ctx()).to_coords(),
              (std::vector<Coord>{{0, 1}, {2, 3}, {4, 5}}));
    // Re-inserting a pending delete cancels it.
    d.apply(cells(8, 8, {{1, 2}}), cells(8, 8, {}), ctx());
    EXPECT_TRUE(d.pending_dels().empty());
    EXPECT_EQ(d.nnz(), 4u);
}

TEST_F(IncrementalNet, DeltaMatrixConsolidatesPastThreshold) {
    const auto base = uniform_graph(16, 40, 113);
    DeltaMatrix d{base, /*consolidate_fraction=*/0.25};
    const auto base_version = d.base().version();
    // A small batch stays in the overlay (base untouched, version stable)...
    const auto tiny = storage::ewise_diff(ctx(), cells(16, 16, {{15, 0}}), base);
    d.apply(tiny, Matrix{16, 16, ctx()}, ctx());
    EXPECT_EQ(d.base().version(), base_version);
    // ...but a batch larger than fraction × base nnz folds everything in.
    const auto big = storage::ewise_diff(ctx(), uniform_graph(16, 64, 127), d.base());
    const auto expect = storage::ewise_add(
        ctx(), storage::ewise_add(ctx(), base, tiny), big);
    d.apply(big, Matrix{16, 16, ctx()}, ctx());
    EXPECT_TRUE(d.overlay_empty());
    EXPECT_NE(d.base().version(), base_version);
    EXPECT_EQ(d.base(), expect);
    EXPECT_EQ(d.snapshot(ctx()).version(), d.base().version())
        << "empty-overlay snapshot must share the base's epoch";
}

TEST_F(IncrementalNet, DeltaMatrixSnapshotIsCachedPerEpoch) {
    DeltaMatrix d{cells(6, 6, {{0, 1}, {1, 2}})};
    d.apply(cells(6, 6, {{2, 3}}), Matrix{6, 6, ctx()}, ctx());
    const auto v1 = d.snapshot(ctx()).version();
    EXPECT_EQ(d.snapshot(ctx()).version(), v1) << "repeat snapshot must be cached";
    d.apply(cells(6, 6, {{3, 4}}), Matrix{6, 6, ctx()}, ctx());
    EXPECT_NE(d.snapshot(ctx()).version(), v1) << "apply must invalidate the cache";
}

// ---- op memo --------------------------------------------------------------

TEST_F(IncrementalNet, MemoHitsOnRepeatAndMissesAfterMutation) {
    const auto a = uniform_graph(16, 40, 131);
    const auto b = uniform_graph(16, 40, 137);
    const auto s0 = memo().stats();
    const auto r1 = memo_multiply(ctx(), a, b);
    const auto r2 = memo_multiply(ctx(), a, b);
    auto s = memo().stats();
    EXPECT_EQ(s.stores - s0.stores, 1u);
    EXPECT_EQ(s.hits - s0.hits, 1u);
    EXPECT_EQ(r1, r2);
    EXPECT_EQ(r1.version(), r2.version()) << "memo results share the cached epoch";
    EXPECT_EQ(r1, storage::multiply(ctx(), a, b));

    // Mutating an operand changes its epoch: the memo must recompute, never
    // serve the stale product.
    auto a2 = a;
    a2.apply_delta(cells(16, 16, {{15, 15}}), Matrix{16, 16, ctx()}, ctx());
    const auto r3 = memo_multiply(ctx(), a2, b);
    s = memo().stats();
    EXPECT_EQ(s.stores - s0.stores, 2u) << "mutated operand must miss";
    EXPECT_EQ(r3, storage::multiply(ctx(), a2, b));
}

TEST_F(IncrementalNet, MemoEvictsFifoAtCapacity) {
    memo().clear();
    const auto cap = memo().capacity();
    const auto b = uniform_graph(8, 10, 139);
    for (std::size_t k = 0; k < cap + 5; ++k) {
        // Distinct epochs per handle → distinct keys.
        const auto a = uniform_graph(8, 10, 1000 + k);
        (void)memo_multiply(ctx(), a, b);
    }
    EXPECT_EQ(memo().size(), cap);
    EXPECT_GE(memo().stats().evictions, 5u);
}

// ---- epoch audit ----------------------------------------------------------

TEST_P(EpochAudit, MutatingEntryPointsRestampCorrectly) {
    const std::string which = GetParam();
    auto m = uniform_graph(12, 30, 149);
    const auto v0 = m.version();
    ASSERT_NE(v0, 0u);

    if (which == "apply_delta_insert") {
        m.apply_delta(cells(12, 12, {{11, 11}}), Matrix{12, 12, ctx()}, ctx());
        EXPECT_GT(m.version(), v0) << "fresh epochs are monotone";
    } else if (which == "apply_delta_delete") {
        m.apply_delta(Matrix{12, 12, ctx()}, m, ctx());
        EXPECT_TRUE(m.empty());
        EXPECT_GT(m.version(), v0);
    } else if (which == "apply_delta_value_equal") {
        // Re-inserting present cells leaves the value intact but the batch
        // was non-empty: the contract says restamp anyway.
        const auto copy = m;
        m.apply_delta(copy, Matrix{12, 12, ctx()}, ctx());
        EXPECT_EQ(m, copy);
        EXPECT_GT(m.version(), v0);
    } else if (which == "apply_delta_noop") {
        m.apply_delta(Matrix{12, 12, ctx()}, Matrix{12, 12, ctx()}, ctx());
        EXPECT_EQ(m.version(), v0) << "an empty batch must keep the epoch";
    } else if (which == "build") {
        const auto built = cells(12, 12, {{0, 0}});
        EXPECT_NE(built.version(), 0u);
        EXPECT_GT(built.version(), v0) << "later builds get later epochs";
    } else if (which == "copy_shares_move_zeroes") {
        const auto copy = m;
        EXPECT_EQ(copy.version(), v0) << "copies carry the same content";
        auto moved = std::move(m);
        EXPECT_EQ(moved.version(), v0);
        EXPECT_EQ(m.version(), 0u) << "moved-from handles are epoch-zero";  // NOLINT
    } else if (which == "convert_keeps_epoch") {
        m.convert_to(Format::Dense, ctx());
        EXPECT_EQ(m.version(), v0) << "format conversion does not change content";
        m.drop_cached();
        EXPECT_EQ(m.version(), v0) << "cached-rep drop does not change content";
    } else {
        FAIL() << "unknown audit case " << which;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMutatingEntryPoints, EpochAudit,
    ::testing::Values("apply_delta_insert", "apply_delta_delete",
                      "apply_delta_value_equal", "apply_delta_noop", "build",
                      "copy_shares_move_zeroes", "convert_keeps_epoch"),
    [](const ::testing::TestParamInfo<EpochAuditCase>& info) {
        return std::string{info.param};
    });

TEST_F(IncrementalNet, EpochAuditDistScatterGatherStaysInSync) {
    // Force sharding on tiny operands so the shard cache actually engages.
    dist::Config cfg;
    cfg.devices = 2;
    cfg.min_nnz = 1;
    cfg.min_dim = 1;
    dist::configure(cfg);
    {
        auto a = uniform_graph(24, 80, 151);
        const auto b = uniform_graph(24, 80, 157);

        // Scatter/gather round-trips the content and records the epoch.
        dist::ShardedMatrix sharded{dist::group(), a,
                                    dist::Partition::uniform(24, 24, 2, 2)};
        EXPECT_EQ(sharded.source_version(), a.version());
        EXPECT_TRUE(sharded.in_sync_with(a));
        EXPECT_EQ(sharded.gather(ctx()), a);

        // A sharded multiply, a mutation, then another multiply: the second
        // result must reflect the new epoch, not a stale cached sharding.
        const auto r1 = [&] {
            dist::ScopedHint force{dist::Hint::ForceShard};
            return storage::multiply(ctx(), a, b);
        }();
        EXPECT_EQ(r1, storage::multiply(ctx(), a, b));
        a.apply_delta(cells(24, 24, {{23, 0}, {0, 23}}), Matrix{24, 24, ctx()}, ctx());
        EXPECT_FALSE(sharded.in_sync_with(a)) << "mutation must invalidate shardings";
        const auto r2 = [&] {
            dist::ScopedHint force{dist::Hint::ForceShard};
            return storage::multiply(ctx(), a, b);
        }();
        EXPECT_EQ(r2, storage::multiply(ctx(), a, b))
            << "sharded result served a stale shard cache entry";
        EXPECT_NE(r1, r2);
    }
    dist::disable();
}

TEST_F(IncrementalNet, EpochAuditNoStaleMemoAcrossDriverStream) {
    // Drive a full incremental stream and assert the invariant the trace
    // checker enforces in CI: every memo hit had a lookup, every lookup is a
    // hit or a store, and results always match fresh computation.
    const auto g = uniform_graph(20, 50, 163);
    util::Rng rng{167};
    Matrix truth = g;
    IncrementalClosure inc{ctx(), g};
    for (int round = 0; round < 8; ++round) {
        const auto b = make_batch(round % 2 == 0 ? Mode::InsertOnly : Mode::Mixed, 20,
                                  4, truth, rng);
        truth = fold(truth, b);
        inc.apply(cells(20, 20, b.adds), cells(20, 20, b.removes));
        ASSERT_EQ(inc.closure(), algorithms::transitive_closure(ctx(), truth));
    }
    const auto s = memo().stats();
    EXPECT_EQ(s.lookups, s.hits + s.stores);
    EXPECT_LE(s.hits, s.lookups);
}

}  // namespace
}  // namespace spbla::incr
