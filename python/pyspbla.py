"""pyspbla — Python wrapper over the SPbLA C API.

The paper ships pyspbla as a ctypes binding that "provides safe and
automated management for native resources"; this module is that layer for
the reproduction. Point SPBLA_LIB at the built shared library
(build/src/libspbla.so) or let the loader probe common build paths.

Example:
    import pyspbla as sp
    sp.initialize()
    a = sp.Matrix(4, 4)
    a.build([(0, 1), (1, 2), (2, 3)])
    closure = a.dup()
    closure.mxm(closure, closure, accumulate=True)   # closure += closure^2
    print(sorted(closure.to_list()))
    del a, closure
    sp.finalize()
"""

from __future__ import annotations

import ctypes
import os
from typing import Iterable, List, Tuple

_SUCCESS = 0

_STATUS_NAMES = {
    0: "SUCCESS",
    1: "INVALID_ARGUMENT",
    2: "DIMENSION_MISMATCH",
    3: "OUT_OF_RANGE",
    4: "NOT_INITIALIZED",
    5: "INVALID_STATE",
    6: "ERROR",
}


class SpblaError(RuntimeError):
    """Raised when a native call returns a non-success status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"spbla error {_STATUS_NAMES.get(status, status)}: {message}")
        self.status = status


def _find_library() -> str:
    candidates = []
    env = os.environ.get("SPBLA_LIB")
    if env:
        candidates.append(env)
    here = os.path.dirname(os.path.abspath(__file__))
    candidates += [
        os.path.join(here, "..", "build", "src", "libspbla.so"),
        os.path.join(here, "libspbla.so"),
        "libspbla.so",
    ]
    for path in candidates:
        if os.path.exists(path):
            return path
    return candidates[-1]  # let the dynamic loader try its search path


_lib = ctypes.CDLL(_find_library())

_Index = ctypes.c_uint32
_Handle = ctypes.c_void_p

_lib.spbla_Initialize.argtypes = [ctypes.c_int]
_lib.spbla_Finalize.argtypes = []
_lib.spbla_IsInitialized.restype = ctypes.c_int
_lib.spbla_GetLastError.restype = ctypes.c_char_p
_lib.spbla_GetVersion.restype = ctypes.c_uint32
_lib.spbla_GetLiveObjects.restype = ctypes.c_uint64
_lib.spbla_Matrix_New.argtypes = [ctypes.POINTER(_Handle), _Index, _Index]
_lib.spbla_Matrix_Free.argtypes = [ctypes.POINTER(_Handle)]
_lib.spbla_Matrix_Build.argtypes = [
    _Handle, ctypes.POINTER(_Index), ctypes.POINTER(_Index), _Index, ctypes.c_int]
_lib.spbla_Matrix_ExtractPairs.argtypes = [
    _Handle, ctypes.POINTER(_Index), ctypes.POINTER(_Index), ctypes.POINTER(_Index)]
_lib.spbla_Matrix_Nrows.argtypes = [_Handle, ctypes.POINTER(_Index)]
_lib.spbla_Matrix_Ncols.argtypes = [_Handle, ctypes.POINTER(_Index)]
_lib.spbla_Matrix_Nvals.argtypes = [_Handle, ctypes.POINTER(_Index)]
_lib.spbla_Matrix_Duplicate.argtypes = [_Handle, ctypes.POINTER(_Handle)]
_lib.spbla_MxM.argtypes = [_Handle, _Handle, _Handle, ctypes.c_int]
_lib.spbla_Matrix_EWiseAdd.argtypes = [_Handle, _Handle, _Handle]
_lib.spbla_Matrix_EWiseMult.argtypes = [_Handle, _Handle, _Handle]
_lib.spbla_Kronecker.argtypes = [_Handle, _Handle, _Handle]
_lib.spbla_Matrix_Transpose.argtypes = [_Handle, _Handle]
_lib.spbla_Matrix_ExtractSubMatrix.argtypes = [
    _Handle, _Handle, _Index, _Index, _Index, _Index]
_lib.spbla_Matrix_Reduce.argtypes = [_Handle, _Handle]
_lib.spbla_Vector_New.argtypes = [ctypes.POINTER(_Handle), _Index]
_lib.spbla_Vector_Free.argtypes = [ctypes.POINTER(_Handle)]
_lib.spbla_Vector_Build.argtypes = [_Handle, ctypes.POINTER(_Index), _Index]
_lib.spbla_Vector_ExtractValues.argtypes = [
    _Handle, ctypes.POINTER(_Index), ctypes.POINTER(_Index)]
_lib.spbla_Vector_Size.argtypes = [_Handle, ctypes.POINTER(_Index)]
_lib.spbla_Vector_Nvals.argtypes = [_Handle, ctypes.POINTER(_Index)]
_lib.spbla_Vector_EWiseAdd.argtypes = [_Handle, _Handle, _Handle]
_lib.spbla_Vector_EWiseMult.argtypes = [_Handle, _Handle, _Handle]
_lib.spbla_MxV.argtypes = [_Handle, _Handle, _Handle]
_lib.spbla_VxM.argtypes = [_Handle, _Handle, _Handle]
_lib.spbla_Matrix_ReduceVector.argtypes = [_Handle, _Handle]


def _check(status: int) -> None:
    if status != _SUCCESS:
        message = _lib.spbla_GetLastError().decode("utf-8", "replace")
        raise SpblaError(status, message)


def initialize(sequential: bool = False) -> None:
    """Initialise the native library (must precede everything else)."""
    _check(_lib.spbla_Initialize(1 if sequential else 0))


def finalize() -> None:
    """Tear the native library down; fails while Matrix objects are alive."""
    _check(_lib.spbla_Finalize())


def is_initialized() -> bool:
    return bool(_lib.spbla_IsInitialized())


def version() -> Tuple[int, int, int]:
    v = _lib.spbla_GetVersion()
    return v // 10000, (v // 100) % 100, v % 100


def live_objects() -> int:
    return int(_lib.spbla_GetLiveObjects())


class Matrix:
    """Sparse Boolean matrix with automatic native-resource management."""

    def __init__(self, nrows: int, ncols: int):
        self._handle = _Handle()
        _check(_lib.spbla_Matrix_New(ctypes.byref(self._handle), nrows, ncols))

    def __del__(self):
        if getattr(self, "_handle", None) and self._handle.value:
            _lib.spbla_Matrix_Free(ctypes.byref(self._handle))

    # -- structure ---------------------------------------------------------

    @property
    def nrows(self) -> int:
        out = _Index()
        _check(_lib.spbla_Matrix_Nrows(self._handle, ctypes.byref(out)))
        return out.value

    @property
    def ncols(self) -> int:
        out = _Index()
        _check(_lib.spbla_Matrix_Ncols(self._handle, ctypes.byref(out)))
        return out.value

    @property
    def nvals(self) -> int:
        out = _Index()
        _check(_lib.spbla_Matrix_Nvals(self._handle, ctypes.byref(out)))
        return out.value

    def build(self, pairs: Iterable[Tuple[int, int]], accumulate: bool = False) -> None:
        """Fill the matrix with (row, col) pairs; duplicates collapse."""
        pairs = list(pairs)
        n = len(pairs)
        rows = (_Index * n)(*(p[0] for p in pairs))
        cols = (_Index * n)(*(p[1] for p in pairs))
        _check(_lib.spbla_Matrix_Build(self._handle, rows, cols, n,
                                       1 if accumulate else 0))

    def to_list(self) -> List[Tuple[int, int]]:
        """Read back all true cells as (row, col) pairs."""
        n = self.nvals
        rows = (_Index * max(n, 1))()
        cols = (_Index * max(n, 1))()
        nvals = _Index(n)
        _check(_lib.spbla_Matrix_ExtractPairs(self._handle, rows, cols,
                                              ctypes.byref(nvals)))
        return [(rows[k], cols[k]) for k in range(nvals.value)]

    def dup(self) -> "Matrix":
        out = Matrix.__new__(Matrix)
        out._handle = _Handle()
        _check(_lib.spbla_Matrix_Duplicate(self._handle, ctypes.byref(out._handle)))
        return out

    # -- operations --------------------------------------------------------

    def mxm(self, a: "Matrix", b: "Matrix", accumulate: bool = False) -> "Matrix":
        """self (+)= a x b over the Boolean semiring; returns self."""
        _check(_lib.spbla_MxM(self._handle, a._handle, b._handle,
                              1 if accumulate else 0))
        return self

    def ewise_add(self, a: "Matrix", b: "Matrix") -> "Matrix":
        _check(_lib.spbla_Matrix_EWiseAdd(self._handle, a._handle, b._handle))
        return self

    def ewise_mult(self, a: "Matrix", b: "Matrix") -> "Matrix":
        _check(_lib.spbla_Matrix_EWiseMult(self._handle, a._handle, b._handle))
        return self

    def kronecker(self, a: "Matrix", b: "Matrix") -> "Matrix":
        _check(_lib.spbla_Kronecker(self._handle, a._handle, b._handle))
        return self

    def transpose(self, a: "Matrix") -> "Matrix":
        _check(_lib.spbla_Matrix_Transpose(self._handle, a._handle))
        return self

    def submatrix(self, a: "Matrix", row0: int, col0: int, m: int, n: int) -> "Matrix":
        _check(_lib.spbla_Matrix_ExtractSubMatrix(self._handle, a._handle, row0, col0,
                                                  m, n))
        return self

    def reduce(self, a: "Matrix") -> "Matrix":
        _check(_lib.spbla_Matrix_Reduce(self._handle, a._handle))
        return self


class Vector:
    """Sparse Boolean vector with automatic native-resource management."""

    def __init__(self, size: int):
        self._handle = _Handle()
        _check(_lib.spbla_Vector_New(ctypes.byref(self._handle), size))

    def __del__(self):
        if getattr(self, "_handle", None) and self._handle.value:
            _lib.spbla_Vector_Free(ctypes.byref(self._handle))

    @property
    def size(self) -> int:
        out = _Index()
        _check(_lib.spbla_Vector_Size(self._handle, ctypes.byref(out)))
        return out.value

    @property
    def nvals(self) -> int:
        out = _Index()
        _check(_lib.spbla_Vector_Nvals(self._handle, ctypes.byref(out)))
        return out.value

    def build(self, indices: Iterable[int]) -> None:
        """Fill the vector; duplicate indices collapse."""
        indices = list(indices)
        arr = (_Index * len(indices))(*indices)
        _check(_lib.spbla_Vector_Build(self._handle, arr, len(indices)))

    def to_list(self) -> List[int]:
        n = self.nvals
        out = (_Index * max(n, 1))()
        nvals = _Index(n)
        _check(_lib.spbla_Vector_ExtractValues(self._handle, out, ctypes.byref(nvals)))
        return [out[k] for k in range(nvals.value)]

    def ewise_add(self, a: "Vector", b: "Vector") -> "Vector":
        _check(_lib.spbla_Vector_EWiseAdd(self._handle, a._handle, b._handle))
        return self

    def ewise_mult(self, a: "Vector", b: "Vector") -> "Vector":
        _check(_lib.spbla_Vector_EWiseMult(self._handle, a._handle, b._handle))
        return self

    def mxv(self, m: "Matrix", v: "Vector") -> "Vector":
        _check(_lib.spbla_MxV(self._handle, m._handle, v._handle))
        return self

    def vxm(self, v: "Vector", m: "Matrix") -> "Vector":
        _check(_lib.spbla_VxM(self._handle, v._handle, m._handle))
        return self

    def reduce(self, m: "Matrix") -> "Vector":
        _check(_lib.spbla_Matrix_ReduceVector(self._handle, m._handle))
        return self
