"""pyspbla smoke demo: transitive closure of a path graph through the FFI.

Run from a built tree (or set SPBLA_LIB to the shared library path):
    SPBLA_LIB=build/src/libspbla.so python3 python/demo.py
Exits non-zero on any mismatch, so it doubles as a ctest.
"""

import pyspbla as sp


def main() -> None:
    sp.initialize()
    assert sp.is_initialized()
    print("pyspbla over spbla", ".".join(map(str, sp.version())))

    # Path 0 -> 1 -> 2 -> 3 -> 4.
    a = sp.Matrix(5, 5)
    a.build([(i, i + 1) for i in range(4)])
    assert a.nvals == 4

    # closure += closure * closure until fixpoint.
    closure = a.dup()
    previous = 0
    while closure.nvals != previous:
        previous = closure.nvals
        closure.mxm(closure, closure, accumulate=True)
    pairs = sorted(closure.to_list())
    expected = sorted((i, j) for i in range(5) for j in range(i + 1, 5))
    assert pairs == expected, f"closure mismatch: {pairs}"
    print("closure of the path graph:", pairs)

    # Element-wise ops and Kronecker through the wrapper.
    t = sp.Matrix(5, 5).transpose(a)
    assert sorted(t.to_list()) == [(i + 1, i) for i in range(4)]
    both = sp.Matrix(5, 5).ewise_add(a, t)
    assert both.nvals == 8
    inter = sp.Matrix(5, 5).ewise_mult(a, both)
    assert sorted(inter.to_list()) == sorted(a.to_list())
    kron = sp.Matrix(25, 25).kronecker(a, a)
    assert kron.nvals == 16

    # Vector API: BFS frontier push along the path graph.
    frontier = sp.Vector(5)
    frontier.build([0])
    reached = []
    for _ in range(4):
        frontier = sp.Vector(5).vxm(frontier, a)
        reached.extend(frontier.to_list())
    assert reached == [1, 2, 3, 4], reached
    nonempty_rows = sp.Vector(5).reduce(a)
    assert nonempty_rows.to_list() == [0, 1, 2, 3]
    del frontier, nonempty_rows
    print("vector frontier sweep:", reached)

    # Error surfaced as a Python exception: operand shapes must agree.
    small = sp.Matrix(3, 3)
    try:
        sp.Matrix(5, 5).ewise_add(a, small)
    except sp.SpblaError as e:
        assert e.status == 2, e  # DIMENSION_MISMATCH
        print("dimension mismatch raised correctly:", e)
    else:
        raise AssertionError("shape mismatch not raised")

    del a, t, both, inter, kron, closure, small
    assert sp.live_objects() == 0, sp.live_objects()
    sp.finalize()
    print("pyspbla demo passed")


if __name__ == "__main__":
    main()
