// Fixture: kernel scratch on the op arena / buffer pool, plus the shapes
// the rule must not flag — reference bindings, output-slot assigns, serial
// vectors, and an annotated deliberate cold-path allocation.
#include <cstddef>
#include <vector>

#include "backend/arena.hpp"
#include "backend/context.hpp"

namespace spbla {

void arena_rows(backend::Context& ctx, std::size_t n,
                std::vector<std::vector<int>>& cache) {
    std::vector<int> serial_scratch(n);  // serial code: fine
    serial_scratch.resize(n + 1);
    ctx.parallel_for_chunks(n, 8, [&](std::size_t b, std::size_t e) {
        backend::Arena& arena = ctx.scratch_arena();
        backend::ArenaVector<int> scratch{backend::ArenaAllocator<int>{arena}};
        scratch.assign(64, 0);  // arena-backed growth: fine
        for (std::size_t i = b; i < e; ++i) {
            const std::vector<int>& row = cache[i];  // reference binding
            cache[i].assign(row.begin(), row.end());  // output slot, not scratch
            std::vector<int> cold(row.size());  // lint:allow(hot-alloc) cold path
            scratch[0] = cold.empty() ? 0 : cold[0];
        }
    });
}

}  // namespace spbla
