// Fixture: raw heap scratch inside parallel extents — the allocation-churn
// shape the arena refactor removed (re-adding one must fail this rule).
#include <cstddef>
#include <vector>

#include "backend/context.hpp"

namespace spbla {

void hot_rows(backend::Context& ctx, std::size_t n) {
    std::vector<int> grown_serially;  // declared outside: seeds the name set
    ctx.parallel_for(n, 8, [&](std::size_t i) {
        std::vector<int> per_row(64);  // constructed per row
        per_row[0] = static_cast<int>(i);
        grown_serially.resize(i);  // regrown per row
    });
}

void hot_chunks(backend::Context& ctx, std::size_t n) {
    ctx.parallel_for_chunks(n, 8, [&](std::size_t b, std::size_t e) {
        auto tmp = std::vector<std::size_t>(e - b);  // temporary per chunk
        tmp[0] = b;
    });
}

}  // namespace spbla
