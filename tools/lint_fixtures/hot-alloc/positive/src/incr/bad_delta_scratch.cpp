// Fixture: the incremental layer is inside the hot-alloc perimeter too —
// per-round scratch in a semi-naive loop must go through the op arena.
#include <cstddef>
#include <vector>

#include "backend/context.hpp"

namespace spbla::incr {

void hot_frontier(backend::Context& ctx, std::size_t n) {
    ctx.parallel_for(n, 8, [&](std::size_t i) {
        std::vector<int> per_round(64);  // constructed per frontier row
        per_round[0] = static_cast<int>(i);
    });
}

}  // namespace spbla::incr
