// Fixture: the storage layer is a sanctioned consumer of concrete formats.
#include "core/csr.hpp"
void use() {}
