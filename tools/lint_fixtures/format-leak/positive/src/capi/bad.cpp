// Fixture: concrete format + tile headers included above the storage engine.
#include "core/csr.hpp"
#include "dist/partition.hpp"
void use() {}
