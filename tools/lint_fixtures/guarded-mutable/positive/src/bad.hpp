// Fixture: unguarded mutable members, one of them spanning two lines.
#pragma once
#include <cstddef>
#include <vector>
namespace spbla {
class Cache {
    mutable std::size_t hits_ = 0;
    mutable std::vector<int>
        scratch_;
};
}  // namespace spbla
