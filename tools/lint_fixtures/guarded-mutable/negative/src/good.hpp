// Fixture: atomic, annotated and primitive mutables are all sanctioned.
#pragma once
#include <atomic>
#include <cstddef>
#include "util/thread_annotations.hpp"
namespace spbla {
class Cache {
    mutable util::Mutex mutex_;
    mutable std::atomic<std::size_t> hits_{0};
    mutable std::size_t fills_ SPBLA_GUARDED_BY(mutex_) {0};
};
}  // namespace spbla
