// Fixture: contract macro used without the header that defines it.
void check(int n) {
    SPBLA_ASSERT(n > 0, "n must be positive");
}
