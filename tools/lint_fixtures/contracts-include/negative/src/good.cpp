// Fixture: the include is present.
#include "util/contracts.hpp"
void check(int n) {
    SPBLA_ASSERT(n > 0, "n must be positive");
}
