// Fixture: RAII ownership and deleted special members are clean.
#include <memory>
struct NoCopy {
    NoCopy(const NoCopy&) = delete;
    NoCopy& operator=(const NoCopy&) = delete;
};
void tracked_allocation() {
    auto buf = std::make_unique<int[]>(8);
    buf[0] = 1;
}
