// Fixture: raw allocation and deallocation must both be flagged.
void leak_device_memory() {
    int* p = new int[8];
    delete[] p;
}
