// Fixture: work launched through the pool is clean.
void pooled_worker(int& pool) {
    (void)pool;  // stands in for ThreadPool::submit in a fixture
}
