// Fixture: a worker outside the pool escapes the TSan-checked scheduler.
#include <thread>
void rogue_worker() {
    std::thread t([] {});
    t.join();
}
