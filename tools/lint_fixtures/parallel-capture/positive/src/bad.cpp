// Fixture: lazy accessors inside parallel extents with no prewarm — the
// PR 6 bug shape (re-adding an unguarded accessor must fail this rule).
#include "storage/matrix.hpp"
namespace spbla {
void hot_loop(backend::Context& ctx, const Matrix& m) {
    ctx.parallel_for(64, 8, [&](std::size_t i) {
        (void)m.csr(ctx);
        (void)i;
    });
}
void hot_tiles(dist::DeviceGroup& group, backend::Context& ctx, const Matrix& n) {
    group.run(4, [&](std::size_t t) {
        (void)n.bitblocks(ctx);
        (void)t;
    });
}
}  // namespace spbla
