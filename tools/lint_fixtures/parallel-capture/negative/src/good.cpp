// Fixture: the TU prewarms the same object's representation before the
// launch, so the in-flight accessor is a pure published-pointer read.
#include "storage/matrix.hpp"
namespace spbla {
void warmed_loop(backend::Context& ctx, const Matrix& m) {
    (void)m.csr(ctx);  // prewarm: materialise before the parallel region
    ctx.parallel_for(64, 8, [&](std::size_t i) {
        (void)m.csr(ctx);
        (void)i;
    });
}
}  // namespace spbla
