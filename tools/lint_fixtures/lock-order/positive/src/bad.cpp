// Fixture: two functions acquire the same pair in opposite orders — the
// classic ABBA deadlock. The combined graph has a cycle.
#include "util/thread_annotations.hpp"
namespace spbla {
struct Shared { util::Mutex a_; util::Mutex b_; };
void forward(Shared& s) {
    util::LockGuard first{s.a_};
    util::LockGuard second{s.b_};
}
void backward(Shared& s) {
    util::LockGuard first{s.b_};
    util::LockGuard second{s.a_};
}
}  // namespace spbla
