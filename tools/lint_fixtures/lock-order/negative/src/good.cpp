// Fixture: every path acquires a_ before b_ — the graph is acyclic.
#include "util/thread_annotations.hpp"
namespace spbla {
struct Shared { util::Mutex a_; util::Mutex b_; };
void forward(Shared& s) {
    util::LockGuard first{s.a_};
    util::LockGuard second{s.b_};
}
void also_forward(Shared& s) {
    util::LockGuard only{s.a_};
    {
        util::LockGuard nested{s.b_};
    }
}
}  // namespace spbla
