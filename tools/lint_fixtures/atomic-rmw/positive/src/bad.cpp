// Fixture: load-then-store on the same atomic loses concurrent updates.
#include <atomic>
void bump(std::atomic<unsigned long long>& v) {
    v.store(v.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}
