// Fixture: fetch-ops and cross-object stores are clean.
#include <atomic>
void bump(std::atomic<unsigned long long>& v, std::atomic<unsigned long long>& w) {
    v.fetch_add(1, std::memory_order_relaxed);
    v.store(w.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}
