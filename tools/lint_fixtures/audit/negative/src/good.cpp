// Fixture: the suppression matches a real finding — not stale.
#include <thread>
void sanctioned() {
    std::thread t([] {});  // lint:allow(std-thread)
    t.join();
}
