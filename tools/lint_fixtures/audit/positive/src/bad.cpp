// Fixture: the suppression below sits on a line that no longer triggers
// std-thread — the audit must flag it as stale.
void quiet() {
    int workers = 0;  // lint:allow(std-thread)
    (void)workers;
}
