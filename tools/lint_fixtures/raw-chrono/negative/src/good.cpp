// Fixture: timing through the project Timer is clean.
struct Timer { double seconds() const { return 0.0; } };
double timed() {
    Timer t;
    return t.seconds();
}
