// Fixture: ad-hoc clock in kernel code — include and use both flagged.
#include <chrono>
long long adhoc_clock() {
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
