// Fixture: mentioning an instrument in prose is fine — only string
// literals are flagged. The spbla.dispatch.ops counter is documented here.
#include <string>
/* block comments citing spbla.op.latency_ns.csr are fine too */
const char* kSchemaTag = "spbla.metrics.v1";  // format tag, not an instrument
std::string describe() { return "dispatch counters live in metric_names.hpp"; }
