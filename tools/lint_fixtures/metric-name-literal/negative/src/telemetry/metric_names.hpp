// Fixture: the sanctioned home of metric-name literals is exempt.
#pragma once
constexpr const char* kDispatchOps = "spbla.dispatch.ops";
