// Fixture: instrument names spelled as string literals outside
// telemetry/metric_names.hpp — the registry schema is the enums there.
#include <string>
bool is_dispatch_counter(const std::string& name) {
    return name == "spbla.dispatch.ops";
}
const char* kLatencyKey = "spbla.op.latency_ns.csr";
const char* kMemoKey = "spbla.incr.memo_hits";
