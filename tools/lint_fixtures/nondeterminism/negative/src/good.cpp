// Fixture: explicit seeds through the project Rng are clean.
struct Rng { explicit Rng(unsigned long long) {} unsigned below(unsigned n) { return n - 1; } };
unsigned reproducible() {
    Rng rng{7};
    return rng.below(10);
}
