// Fixture: libc RNG, wall-clock seeding and random_device are all flagged.
#include <cstdlib>
#include <random>
int unreproducible() {
    srand(42);
    int a = rand();
    std::random_device rd;
    return a + static_cast<int>(rd());
}
