// Fixture: constants at file scope are fine; state lives in the function.
namespace spbla::ops {
constexpr unsigned kChunk = 64;
void kernel() {
    unsigned long long calls = 0;
    calls += kChunk;
    (void)calls;
}
}  // namespace spbla::ops
