// Fixture: hidden mutable global in a kernel TU.
namespace spbla::ops {
static unsigned long long g_scratch_calls = 0;
void kernel() { ++g_scratch_calls; }
}  // namespace spbla::ops
