// Fixture: boundary validation present.
#include "util/contracts.hpp"
namespace spbla::ops {
int multiply_nothing(int a, int b) {
    SPBLA_CHECKED(a >= 0, "operands validated");
    return a * b;
}
}  // namespace spbla::ops
