// Fixture: a kernel TU with no validation wiring at its boundaries.
namespace spbla::ops {
int multiply_nothing(int a, int b) { return a * b; }
}  // namespace spbla::ops
