// Fixture: NDEBUG-sensitive asserts — include and call both flagged.
#include <cassert>
void check_invariant(int n) {
    assert(n > 0);
}
