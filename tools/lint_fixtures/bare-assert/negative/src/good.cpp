// Fixture: contract macros are clean (static_assert is always fine).
#include "util/contracts.hpp"
void check_invariant(int n) {
    SPBLA_ASSERT(n > 0, "n must be positive");
    static_assert(sizeof(int) >= 4);
}
