#!/usr/bin/env python3
"""Self-test for tools/lint.py: every rule runs against its seeded fixtures.

For each rule under tools/lint_fixtures/<rule>/ the positive tree must
produce exactly the expected number of findings (and exit 1) and the
negative tree must be clean (exit 0). The audit fixtures check that
--audit-allows flags a stale `lint:allow` and accepts a live one. Runs as
the `lint_rules` ctest target, so a rule regression — a pattern loosened
until it matches nothing, a tokenizer change that breaks extent tracking —
fails CI instead of silently gutting the gate.

Exit status: 0 iff every expectation holds.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
LINT = TOOLS / "lint.py"
FIXTURES = TOOLS / "lint_fixtures"

#: rule -> expected finding count in its positive fixture tree. The counts
#: are deliberately exact: "at least one" would let a rule regress from
#: flagging every site to flagging the first.
EXPECTED_POSITIVE = {
    "raw-new-delete": 2,     # one `new`, one `delete[]`
    "std-thread": 1,
    "nondeterminism": 3,     # srand, rand, random_device
    "raw-chrono": 2,         # <chrono> include + std::chrono use
    "bare-assert": 2,        # <cassert> include + assert() call
    "contracts-include": 1,
    "ops-validation": 1,
    "format-leak": 2,        # concrete core header + concrete dist header
    "metric-name-literal": 3,  # comparison literal + two named constants
    "ops-file-state": 1,
    "parallel-capture": 2,   # parallel_for lambda + group().run lambda
    "hot-alloc": 4,          # per-row ctor, per-row resize, per-chunk temp,
                             # per-round ctor in src/incr/
    "guarded-mutable": 2,    # single-line and line-spanning declaration
    "atomic-rmw": 1,
    "lock-order": 1,         # one ABBA cycle
}


def run_lint(root: Path, rule: str, audit: bool = False
             ) -> tuple[int, int, int]:
    """Returns (exit code, findings for `rule`, stale-allow count)."""
    cmd = [sys.executable, str(LINT), "--root", str(root), "--rules", rule]
    if audit:
        cmd.append("--audit-allows")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
    findings = len(re.findall(rf"^\S+:\d+: \[{re.escape(rule)}\]",
                              proc.stdout, re.MULTILINE))
    stale = len(re.findall(r"\[audit-allows\]", proc.stdout))
    return proc.returncode, findings, stale


def main() -> int:
    failures: list[str] = []

    def expect(label: str, cond: bool, detail: str) -> None:
        if cond:
            print(f"  ok: {label}")
        else:
            failures.append(f"{label}: {detail}")
            print(f"FAIL: {label}: {detail}")

    for rule, want in sorted(EXPECTED_POSITIVE.items()):
        pos = FIXTURES / rule / "positive"
        neg = FIXTURES / rule / "negative"
        if not pos.is_dir() or not neg.is_dir():
            failures.append(f"{rule}: fixture tree missing under {FIXTURES}")
            print(f"FAIL: {rule}: fixture tree missing")
            continue
        rc, n, _ = run_lint(pos, rule)
        expect(f"{rule}/positive", rc == 1 and n == want,
               f"expected exit 1 with {want} finding(s), got exit {rc} "
               f"with {n}")
        rc, n, _ = run_lint(neg, rule)
        expect(f"{rule}/negative", rc == 0 and n == 0,
               f"expected a clean exit 0, got exit {rc} with {n} finding(s)")

    # A suppression on a line that no longer triggers its rule is stale...
    rc, n, stale = run_lint(FIXTURES / "audit" / "positive", "std-thread",
                            audit=True)
    expect("audit-allows/stale", rc == 1 and stale == 1 and n == 0,
           f"expected exit 1 with 1 stale allow, got exit {rc} with "
           f"{stale} stale / {n} finding(s)")
    # ...while one sitting on a live finding both suppresses and survives.
    rc, n, stale = run_lint(FIXTURES / "audit" / "negative", "std-thread",
                            audit=True)
    expect("audit-allows/live", rc == 0 and stale == 0 and n == 0,
           f"expected exit 0 with no stale allows, got exit {rc} with "
           f"{stale} stale / {n} finding(s)")

    total = len(EXPECTED_POSITIVE) * 2 + 2
    print(f"test_lint: {total - len(failures)}/{total} checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
