#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by spbla::prof.

Checks, in order:

  structure   The file parses as JSON and has the sections the exporter
              promises: "traceEvents" (list) plus the spbla-specific
              "spbla_counters" aggregate and "otherData" metadata (which
              chrome://tracing / Perfetto simply ignore).
  events      Every trace event is well-formed: metadata ("M") events name a
              thread, duration ("X") events carry numeric ts/dur/pid/tid and
              a non-empty name. The exporter only emits self-contained "X"
              events, so no begin/end ("B"/"E") pairing can dangle.
  balance     Per thread, span windows [ts, ts+dur] properly nest: any two
              either contain one another or are disjoint. A partial overlap
              means a corrupted ring entry or a broken scope stack.
  counters    "spbla_counters" rows are {span, counter, kind, value} with
              kind in {sum, max}; value is a non-negative integer.
  spgemm      (--require-spgemm) The trace demonstrably covers the SpGEMM
              pipeline: "spgemm.multiply" spans exist; under that span the
              nnz_in / nnz_out counters are present; the bin classes
              partition the rows (empty + tiny + hash_small + hash_large +
              dense == total); hash_probes >= hash_collisions; and, when the
              trace involves more than one thread (on a single-core host the
              kernels legitimately fall back to serial execution), the pool
              recorded work (pool_tasks or pool_steals).
  dist        (--require-dist) The trace demonstrably covers the sharded
              multi-device layer (src/dist): dist.* operation spans were
              recorded, every sharded op processed at least one tile
              (dist_tiles >= dist_sharded_ops), shardings were built
              (dist_shard_builds), the transfer counters are present with
              dist_transfer_bytes >= dist_transfers (a transfer moves at
              least one byte), and tile steals never exceed the tiles that
              exist to steal (dist_steals <= dist_tiles).
  dispatch    (--require-dispatch) The trace demonstrably covers the
              format-dispatch layer (src/storage): at least one
              dispatch_csr / dispatch_coo / dispatch_dense pick was
              recorded, format conversions were counted (the warm-up
              converts between representations), and the secondary-
              representation cache registered hits — all three families
              missing means dispatch ran untraced or its counters are
              unwired.
  bitblock    (--require-bitblock) The trace demonstrably covers the
              64x64 tile broadword tier (src/ops/bitblock_*): bitblock.*
              operation spans were recorded, every bitblock op visited at
              least one tile (bitblock_blocks_touched), the element-wise /
              mxv AND paths counted word ops (bitblock_words_anded), and
              the Four-Russians lookup table was actually probed on the
              dense rungs (bitblock_lookup_hits). A dispatch_bitblock pick
              must exist when --require-dispatch also passed, proving the
              cost model routes work here on its own.

  incr        (--require-incr) The trace demonstrably covers the incremental
              evaluation layer (src/incr): incr.* spans were recorded
              including at least one semi-naive round span, the op-memo
              accounting is sane (lookups > 0, hits were observed, and
              hits + stores never exceed lookups — a racing creator may
              count neither), every recorded round carried frontier work
              (incr_frontier_nnz), batches flowed through a driver
              (incr_batches with the baseline/saved-iterations pair, where
              iterations_saved <= baseline_rounds and any batch that used
              rounds left round spans behind), the delta overlay absorbed
              cells (incr_delta_nnz), and the dispatcher's empty-operand
              short-circuit fired (incr_shortcircuit).

  metrics     (--require-metrics, with --metrics PATH) A telemetry snapshot
              dumped by SPBLA_METRICS / spbla_MetricsDump validates: the
              schema tag is spbla.metrics.v1, counters are non-negative
              integers, each histogram's bucket counts sum to its count and
              its p50/p95/p99 are monotone, the per-route op-latency
              histogram counts sum exactly to spbla.dispatch.ops, each
              per-format dispatch counter covers its route's histogram
              count, and the memory peak gauge dominates the live gauge.
              The Prometheus sibling at PATH.prom (when present) must parse
              line-by-line with cumulative buckets and _count == +Inf.
  arena       (--require-arena, with --metrics PATH) The op-scoped arena
              allocator demonstrably backed the run: every dispatched op
              closed at least one arena scope (spbla.arena.resets >=
              spbla.dispatch.ops), the reserved high-water gauge dominates
              the used high-water gauge (an arena can never bump past its
              slabs), and the buffer-pool reuse counters
              (spbla.arena.pool_hits / pool_misses) are present — all
              missing means the kernels bypassed the arena tier entirely.
  flight      (--flight PATH) A crash flight-recorder dump parses as JSON
              lines with strictly increasing seq, named ops and sane fields.

Usage: tools/check_trace.py TRACE.json [--require-spgemm]
           [--require-dispatch] [--require-dist] [--require-bitblock]
           [--require-incr] [--require-metrics --metrics METRICS.json]
           [--require-arena]
           [--flight FLIGHT.jsonl]
Exits 0 iff every check passes.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

# ts/dur are microseconds with three decimals (nanosecond resolution), so
# anything below half a nanosecond is formatting noise, not overlap.
EPS_US = 0.0005


class Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []

    def error(self, msg: str) -> None:
        self.errors.append(msg)

    # --- checks ---------------------------------------------------------

    def check_structure(self, doc: object) -> dict | None:
        if not isinstance(doc, dict):
            self.error("top level is not a JSON object")
            return None
        for key, kind in (("traceEvents", list), ("spbla_counters", list),
                          ("otherData", dict)):
            if key not in doc:
                self.error(f"missing top-level key {key!r}")
            elif not isinstance(doc[key], kind):
                self.error(f"top-level {key!r} is not a {kind.__name__}")
        return doc if not self.errors else None

    def check_events(self, events: list) -> list[dict]:
        spans = []
        for i, e in enumerate(events):
            where = f"traceEvents[{i}]"
            if not isinstance(e, dict):
                self.error(f"{where}: not an object")
                continue
            ph = e.get("ph")
            if ph == "M":
                if e.get("name") != "thread_name":
                    self.error(f"{where}: metadata event is not a thread_name")
                if not isinstance(e.get("args", {}).get("name"), str):
                    self.error(f"{where}: thread_name without args.name")
                continue
            if ph != "X":
                self.error(f"{where}: unexpected phase {ph!r} "
                           "(exporter emits only X and M)")
                continue
            if not isinstance(e.get("name"), str) or not e["name"]:
                self.error(f"{where}: X event without a name")
            for field in ("ts", "dur", "pid", "tid"):
                if not isinstance(e.get(field), (int, float)):
                    self.error(f"{where}: X event missing numeric {field!r}")
            if isinstance(e.get("dur"), (int, float)) and e["dur"] < 0:
                self.error(f"{where}: negative duration")
            if isinstance(e.get("ts"), (int, float)) and e["ts"] < -EPS_US:
                self.error(f"{where}: negative timestamp")
            spans.append(e)
        return spans

    def check_balance(self, spans: list[dict]) -> None:
        by_tid: dict[object, list[dict]] = defaultdict(list)
        for e in spans:
            if isinstance(e.get("ts"), (int, float)) and isinstance(
                    e.get("dur"), (int, float)):
                by_tid[e.get("tid")].append(e)
        for tid, tid_spans in by_tid.items():
            # Sweep in start order, outermost (longest) first on ties, with a
            # stack of open end times: an event beginning inside an open span
            # must also end inside it.
            tid_spans.sort(key=lambda e: (e["ts"], -e["dur"]))
            stack: list[float] = []
            for e in tid_spans:
                start, end = e["ts"], e["ts"] + e["dur"]
                while stack and stack[-1] <= start + EPS_US:
                    stack.pop()
                if stack and end > stack[-1] + EPS_US:
                    self.error(
                        f"tid {tid}: span {e['name']!r} [{start:.3f}, "
                        f"{end:.3f}] partially overlaps an enclosing span "
                        f"ending at {stack[-1]:.3f} — spans must nest")
                stack.append(end)

    def check_counters(self, rows: list) -> dict[tuple[str, str], int]:
        table: dict[tuple[str, str], int] = {}
        for i, row in enumerate(rows):
            where = f"spbla_counters[{i}]"
            if not isinstance(row, dict):
                self.error(f"{where}: not an object")
                continue
            span, counter = row.get("span"), row.get("counter")
            if not isinstance(span, str) or not isinstance(counter, str):
                self.error(f"{where}: missing span/counter names")
                continue
            if row.get("kind") not in ("sum", "max"):
                self.error(f"{where}: kind must be 'sum' or 'max'")
            value = row.get("value")
            if not isinstance(value, int) or value < 0:
                self.error(f"{where}: value must be a non-negative integer")
                continue
            table[(span, counter)] = value
        return table

    def check_spgemm(self, spans: list[dict],
                     counters: dict[tuple[str, str], int]) -> None:
        names = {e.get("name") for e in spans}
        if "spgemm.multiply" not in names:
            self.error("no 'spgemm.multiply' span recorded")

        def under_multiply(counter: str) -> int | None:
            return counters.get(("spgemm.multiply", counter))

        for required in ("nnz_in", "nnz_out", "rows_total"):
            if under_multiply(required) is None:
                self.error(f"counter {required!r} missing under spgemm.multiply")
        total = under_multiply("rows_total")
        if total is not None:
            bins = ["rows_empty", "rows_tiny", "rows_hash_small",
                    "rows_hash_large", "rows_dense"]
            got = sum(under_multiply(b) or 0 for b in bins)
            if got != total:
                self.error(f"bin classes sum to {got}, expected rows_total "
                           f"= {total} (bins must partition the rows)")

        probes = sum(v for (s, c), v in counters.items() if c == "hash_probes")
        collisions = sum(v for (s, c), v in counters.items()
                         if c == "hash_collisions")
        if probes == 0:
            self.error("no hash_probes recorded — the hash kernel never ran "
                       "or its counters are unwired")
        if collisions > probes:
            self.error(f"hash_collisions ({collisions}) exceeds hash_probes "
                       f"({probes}) — every collision is a probe")

        # On a single-core host every launch takes the serial fallback, so
        # only a genuinely multi-threaded trace must show pool bookkeeping.
        tids = {e.get("tid") for e in spans}
        if len(tids) > 1:
            pool_work = sum(v for (s, c), v in counters.items()
                            if c in ("pool_tasks", "pool_steals",
                                     "pool_bulk_launches"))
            if pool_work == 0:
                self.error("multi-threaded trace but no pool_tasks/"
                           "pool_steals/pool_bulk_launches recorded — the "
                           "thread-pool counters are unwired")

    def check_dispatch(self, counters: dict[tuple[str, str], int]) -> None:
        def total(counter: str) -> int:
            return sum(v for (s, c), v in counters.items() if c == counter)

        picks = sum(total(c) for c in ("dispatch_csr", "dispatch_coo",
                                       "dispatch_dense", "dispatch_bitblock"))
        if picks == 0:
            self.error("no dispatch_csr/dispatch_coo/dispatch_dense picks "
                       "recorded — the storage dispatch layer never ran or "
                       "its counters are unwired")
        if not any(c == "format_conversions" for (s, c) in counters):
            self.error("no format_conversions counter recorded — "
                       "representation conversion is untraced")
        if total("repr_cache_hits") == 0:
            self.error("no repr_cache_hits recorded — cached secondary "
                       "representations were never reused (or the counter "
                       "is unwired)")

    def check_dist(self, spans: list[dict],
                   counters: dict[tuple[str, str], int]) -> None:
        def total(counter: str) -> int:
            return sum(v for (s, c), v in counters.items() if c == counter)

        if not any(str(e.get("name", "")).startswith("dist.") for e in spans):
            self.error("no dist.* operation span recorded — the sharded "
                       "layer never ran under tracing")
        ops = total("dist_sharded_ops")
        if ops == 0:
            self.error("dist_sharded_ops is zero — no operation actually "
                       "routed through sharded execution")
        tiles = total("dist_tiles")
        if tiles < ops:
            self.error(f"dist_tiles ({tiles}) < dist_sharded_ops ({ops}) — "
                       "every sharded op must process at least one tile")
        if total("dist_shard_builds") == 0:
            self.error("no dist_shard_builds recorded — matrices were never "
                       "scattered into tile grids (or the counter is unwired)")
        present = {c for (s, c) in counters}
        for required in ("dist_transfers", "dist_transfer_bytes"):
            if required not in present:
                self.error(f"counter {required!r} missing — inter-device "
                           "transfer accounting is unwired")
        transfers, xfer_bytes = total("dist_transfers"), total("dist_transfer_bytes")
        if xfer_bytes < transfers:
            self.error(f"dist_transfer_bytes ({xfer_bytes}) < dist_transfers "
                       f"({transfers}) — a transfer moves at least one byte")
        steals = total("dist_steals")
        if steals > tiles:
            self.error(f"dist_steals ({steals}) exceeds dist_tiles ({tiles}) "
                       "— only scheduled tiles can be stolen")

    def check_bitblock(self, spans: list[dict],
                       counters: dict[tuple[str, str], int],
                       dispatch_required: bool) -> None:
        def total(counter: str) -> int:
            return sum(v for (s, c), v in counters.items() if c == counter)

        if not any(str(e.get("name", "")).startswith("bitblock.")
                   for e in spans):
            self.error("no bitblock.* operation span recorded — the broadword "
                       "tier never ran under tracing")
        if total("bitblock_blocks_touched") == 0:
            self.error("bitblock_blocks_touched is zero — no bitblock kernel "
                       "visited a tile (or the counter is unwired)")
        if total("bitblock_words_anded") == 0:
            self.error("bitblock_words_anded is zero — the AND paths "
                       "(ewise_mult / mxv) never ran under tracing")
        if total("bitblock_lookup_hits") == 0:
            self.error("bitblock_lookup_hits is zero — no tile crossed the "
                       "Four-Russians threshold, so the lookup path is "
                       "untested (run the dense density-ladder rungs)")
        if dispatch_required and total("dispatch_bitblock") == 0:
            self.error("no dispatch_bitblock pick recorded — the cost model "
                       "never routed an operation to the bitblock tier on "
                       "its own")

    def check_incr(self, spans: list[dict],
                   counters: dict[tuple[str, str], int]) -> None:
        def total(counter: str) -> int:
            return sum(v for (s, c), v in counters.items() if c == counter)

        names = [str(e.get("name", "")) for e in spans]
        if not any(n.startswith("incr.") for n in names):
            self.error("no incr.* operation span recorded — the incremental "
                       "layer never ran under tracing")
        rounds = sum(1 for n in names
                     if n in ("incr.closure.round", "incr.cfpq.round"))
        if rounds == 0:
            self.error("no incr.closure.round / incr.cfpq.round span "
                       "recorded — no semi-naive round ever executed")

        lookups = total("incr_memo_lookups")
        hits = total("incr_memo_hits")
        stores = total("incr_memo_stores")
        if lookups == 0:
            self.error("incr_memo_lookups is zero — the epoch-keyed op memo "
                       "never consulted (or its counters are unwired)")
        if hits == 0:
            self.error("incr_memo_hits is zero — no delta product was ever "
                       "replayed from the memo (run the replay rung)")
        # A creator that loses the compute-rendezvous race counts neither a
        # hit nor a store, so the pair bounds lookups from below only.
        if hits + stores > lookups:
            self.error(f"incr_memo_hits + incr_memo_stores ({hits} + {stores})"
                       f" exceeds incr_memo_lookups ({lookups}) — every hit "
                       "and store is a lookup")

        if total("incr_frontier_nnz") == 0:
            self.error("incr_frontier_nnz is zero — semi-naive rounds ran "
                       "without frontier work (or the counter is unwired)")

        batches = total("incr_batches")
        baseline = total("incr_baseline_rounds")
        saved = total("incr_iterations_saved")
        if batches == 0:
            self.error("incr_batches is zero — no batch flowed through an "
                       "incremental driver (or the counter is unwired)")
        if saved > baseline:
            self.error(f"incr_iterations_saved ({saved}) exceeds "
                       f"incr_baseline_rounds ({baseline}) — a batch cannot "
                       "save more rounds than the from-scratch baseline")
        if batches > 0 and saved < baseline and rounds == 0:
            self.error(f"incr_baseline_rounds ({baseline}) exceeds "
                       f"incr_iterations_saved ({saved}) yet no round span "
                       "was recorded — the rounds that were used left no "
                       "trace")

        if total("incr_delta_nnz") == 0:
            self.error("incr_delta_nnz is zero — no cells were ever folded "
                       "into a delta overlay (or the counter is unwired)")
        if total("incr_shortcircuit") == 0:
            self.error("incr_shortcircuit is zero — the dispatcher's "
                       "empty-operand short-circuit never fired (or the "
                       "counter is unwired)")

    # --- telemetry metrics snapshot --------------------------------------

    LATENCY_HISTOGRAMS = {
        "spbla.op.latency_ns.csr": "spbla.dispatch.csr",
        "spbla.op.latency_ns.coo": "spbla.dispatch.coo",
        "spbla.op.latency_ns.dense": "spbla.dispatch.dense",
        "spbla.op.latency_ns.bitblock": "spbla.dispatch.bitblock",
        "spbla.op.latency_ns.sharded": "spbla.dist.sharded_ops",
    }

    def check_metrics(self, path: Path) -> None:
        where = path.name
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            self.error(f"{where}: cannot load metrics JSON: {exc}")
            return
        if doc.get("schema") != "spbla.metrics.v1":
            self.error(f"{where}: schema is {doc.get('schema')!r}, "
                       "expected 'spbla.metrics.v1'")
        counters = doc.get("counters")
        gauges = doc.get("gauges")
        histograms = doc.get("histograms")
        for key, section in (("counters", counters), ("gauges", gauges),
                             ("histograms", histograms)):
            if not isinstance(section, dict):
                self.error(f"{where}: missing '{key}' object")
                return

        for name, value in counters.items():
            if not isinstance(value, int) or value < 0:
                self.error(f"{where}: counter {name} is not a "
                           f"non-negative integer: {value!r}")
        for name, value in gauges.items():
            if not isinstance(value, int):
                self.error(f"{where}: gauge {name} is not an integer: {value!r}")

        for name, hist in histograms.items():
            if not isinstance(hist, dict):
                self.error(f"{where}: histogram {name} is not an object")
                continue
            count = hist.get("count", 0)
            buckets = hist.get("buckets", [])
            if sum(buckets) != count:
                self.error(f"{where}: histogram {name} buckets sum to "
                           f"{sum(buckets)}, count says {count}")
            p50, p95, p99 = (hist.get(k, 0) for k in ("p50", "p95", "p99"))
            if not p50 <= p95 <= p99:
                self.error(f"{where}: histogram {name} quantiles not "
                           f"monotone: p50={p50} p95={p95} p99={p99}")
            if count > 0 and hist.get("sum", 0) < hist.get("max", 0):
                self.error(f"{where}: histogram {name} sum < max")

        # Every completed dispatcher op lands in exactly one route histogram.
        ops = counters.get("spbla.dispatch.ops", 0)
        routed = sum(histograms.get(h, {}).get("count", 0)
                     for h in self.LATENCY_HISTOGRAMS)
        if routed != ops:
            self.error(f"{where}: op-latency histogram counts sum to {routed} "
                       f"but spbla.dispatch.ops = {ops} — every dispatched op "
                       "must land in exactly one route histogram")
        # The pick counter increments before the kernel, the histogram after
        # it, so the counter dominates (ops that threw are picked, not timed).
        for hist_name, counter_name in self.LATENCY_HISTOGRAMS.items():
            picked = counters.get(counter_name, 0)
            timed = histograms.get(hist_name, {}).get("count", 0)
            if picked < timed:
                self.error(f"{where}: {counter_name} = {picked} < {hist_name} "
                           f"count = {timed} — picks happen before timings")
        nnz_in = histograms.get("spbla.op.nnz_in", {}).get("count", 0)
        if nnz_in != ops:
            self.error(f"{where}: spbla.op.nnz_in count = {nnz_in} != "
                       f"spbla.dispatch.ops = {ops}")

        live = gauges.get("spbla.mem.live_bytes", 0)
        peak = gauges.get("spbla.mem.peak_bytes", 0)
        if live < 0:
            self.error(f"{where}: spbla.mem.live_bytes is negative ({live})")
        if peak < live:
            self.error(f"{where}: spbla.mem.peak_bytes ({peak}) < "
                       f"live_bytes ({live})")
        allocs = counters.get("spbla.mem.allocs", 0)
        frees = counters.get("spbla.mem.frees", 0)
        if frees > allocs:
            self.error(f"{where}: spbla.mem.frees ({frees}) > allocs "
                       f"({allocs})")

        prom = path.with_name(path.name + ".prom")
        if prom.is_file():
            self.check_prometheus(prom)
        else:
            print(f"check_trace: note: no Prometheus sibling at {prom}")

    def check_arena(self, path: Path) -> None:
        """The arena/pool tier backed the run (reads the metrics snapshot)."""
        where = path.name
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            self.error(f"{where}: cannot load metrics JSON: {exc}")
            return
        counters = doc.get("counters") or {}
        gauges = doc.get("gauges") or {}

        ops = counters.get("spbla.dispatch.ops", 0)
        resets = counters.get("spbla.arena.resets", 0)
        if resets < ops:
            self.error(f"{where}: spbla.arena.resets ({resets}) < "
                       f"spbla.dispatch.ops ({ops}) — every dispatched op "
                       "must close at least one arena scope")
        if ops > 0 and resets == 0:
            self.error(f"{where}: ops dispatched but no arena scope ever "
                       "closed — the kernels bypassed the arena tier")

        reserved = gauges.get("spbla.arena.reserved", 0)
        used = gauges.get("spbla.arena.used", 0)
        if reserved < used:
            self.error(f"{where}: spbla.arena.reserved ({reserved}) < "
                       f"spbla.arena.used ({used}) — an arena cannot bump "
                       "past its slab reserve")
        if reserved < 0 or used < 0:
            self.error(f"{where}: negative arena gauge (reserved={reserved}, "
                       f"used={used})")

        for key in ("spbla.arena.pool_hits", "spbla.arena.pool_misses"):
            if key not in counters:
                self.error(f"{where}: counter {key} missing — the buffer "
                           "pool's reuse accounting is unwired")

    def check_prometheus(self, path: Path) -> None:
        where = path.name
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            self.error(f"{where}: cannot read: {exc}")
            return
        typed: dict[str, str] = {}
        buckets: dict[str, list[tuple[str, int]]] = defaultdict(list)
        samples: dict[str, int] = {}
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "TYPE" or parts[3] not in (
                        "counter", "gauge", "histogram"):
                    self.error(f"{where}:{i + 1}: malformed TYPE line: {line!r}")
                else:
                    typed[parts[2]] = parts[3]
                continue
            parts = line.rsplit(" ", 1)
            if len(parts) != 2:
                self.error(f"{where}:{i + 1}: malformed sample line: {line!r}")
                continue
            name, value = parts
            try:
                num = int(value)
            except ValueError:
                self.error(f"{where}:{i + 1}: non-integer value: {line!r}")
                continue
            if "_bucket{le=" in name:
                base = name.split("_bucket{le=", 1)[0]
                le = name.split('le="', 1)[1].rstrip('"}')
                buckets[base].append((le, num))
            else:
                samples[name] = num
        if not typed:
            self.error(f"{where}: no # TYPE lines — not Prometheus exposition")
        for base, series in buckets.items():
            values = [v for (_le, v) in series]
            if values != sorted(values):
                self.error(f"{where}: histogram {base} buckets are not "
                           "cumulative")
            if series and series[-1][0] != "+Inf":
                self.error(f"{where}: histogram {base} is missing the "
                           "+Inf bucket")
            count = samples.get(base + "_count")
            if series and count is not None and series[-1][1] != count:
                self.error(f"{where}: histogram {base} +Inf bucket "
                           f"({series[-1][1]}) != _count ({count})")
        for name, kind in typed.items():
            if kind in ("counter", "gauge") and name not in samples:
                self.error(f"{where}: TYPE {name} declared but no sample")

    def check_flight(self, path: Path) -> None:
        where = path.name
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            self.error(f"{where}: cannot read: {exc}")
            return
        records = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                self.error(f"{where}:{i + 1}: not a JSON record: {exc}")
                continue
            records.append((i + 1, rec))
        if not records:
            self.error(f"{where}: flight dump holds no records")
            return
        prev_seq = 0
        for lineno, rec in records:
            seq = rec.get("seq")
            if not isinstance(seq, int) or seq <= prev_seq:
                self.error(f"{where}:{lineno}: seq {seq!r} does not increase "
                           f"(previous {prev_seq})")
            else:
                prev_seq = seq
            if not rec.get("op"):
                self.error(f"{where}:{lineno}: record without an op name")
            for field in ("rows", "cols", "nnz_in", "nnz_out", "epoch_ns",
                          "thread", "duration_ns"):
                if not isinstance(rec.get(field), int) or rec[field] < 0:
                    self.error(f"{where}:{lineno}: field {field!r} is not a "
                               "non-negative integer")
        print(f"check_trace: {path}: {len(records)} flight record(s)")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", type=Path, help="Chrome trace-event JSON to check")
    ap.add_argument("--require-spgemm", action="store_true",
                    help="additionally require the SpGEMM pipeline counters "
                         "(bin classes, hash probes, pool work)")
    ap.add_argument("--require-dispatch", action="store_true",
                    help="additionally require the storage-dispatch counters "
                         "(format picks, conversions, cache hits)")
    ap.add_argument("--require-dist", action="store_true",
                    help="additionally require the sharded multi-device "
                         "counters (tiles, shard builds, transfers, steals)")
    ap.add_argument("--require-bitblock", action="store_true",
                    help="additionally require the 64x64 bit-block tier "
                         "counters (blocks touched, words ANDed, "
                         "Four-Russians lookup hits)")
    ap.add_argument("--require-incr", action="store_true",
                    help="additionally require the incremental-evaluation "
                         "counters (memo lookups/hits, round spans, frontier "
                         "and delta nnz, batch accounting, short-circuits)")
    ap.add_argument("--require-metrics", action="store_true",
                    help="additionally validate a telemetry snapshot "
                         "(needs --metrics)")
    ap.add_argument("--require-arena", action="store_true",
                    help="additionally require the op-arena invariants in "
                         "the telemetry snapshot: resets >= dispatched ops, "
                         "reserved >= used, pool counters wired (needs "
                         "--metrics)")
    ap.add_argument("--metrics", type=Path, default=None,
                    help="telemetry JSON dumped by SPBLA_METRICS or "
                         "spbla_MetricsDump; the Prometheus sibling at "
                         "PATH.prom is checked too when present")
    ap.add_argument("--flight", type=Path, default=None,
                    help="flight-recorder crash dump (JSON lines) to validate")
    args = ap.parse_args()

    if args.require_metrics and args.metrics is None:
        ap.error("--require-metrics needs --metrics PATH")
    if args.require_arena and args.metrics is None:
        ap.error("--require-arena needs --metrics PATH")

    try:
        doc = json.loads(args.trace.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_trace: {args.trace}: {exc}", file=sys.stderr)
        return 1

    checker = Checker()
    top = checker.check_structure(doc)
    if top is not None:
        spans = checker.check_events(top["traceEvents"])
        checker.check_balance(spans)
        counters = checker.check_counters(top["spbla_counters"])
        if args.require_spgemm:
            checker.check_spgemm(spans, counters)
        if args.require_dispatch:
            checker.check_dispatch(counters)
        if args.require_dist:
            checker.check_dist(spans, counters)
        if args.require_bitblock:
            checker.check_bitblock(spans, counters, args.require_dispatch)
        if args.require_incr:
            checker.check_incr(spans, counters)
        n_spans, n_counters = len(spans), len(counters)
    else:
        n_spans = n_counters = 0

    if args.require_metrics:
        checker.check_metrics(args.metrics)
    if args.require_arena:
        checker.check_arena(args.metrics)
    if args.flight is not None:
        checker.check_flight(args.flight)

    for err in checker.errors:
        print(f"check_trace: {args.trace}: {err}", file=sys.stderr)
    status = "FAILED" if checker.errors else "ok"
    print(f"check_trace: {args.trace}: {n_spans} span event(s), "
          f"{n_counters} counter row(s), {len(checker.errors)} error(s) — "
          f"{status}")
    return 1 if checker.errors else 0


if __name__ == "__main__":
    sys.exit(main())
