#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json headline geomeans
against the committed baselines in bench/baselines/.

The gate deliberately compares only machine-independent ratio keys (parallel
speedups, tier-vs-tier geomeans), never absolute milliseconds: a CI runner
and a developer laptop disagree hugely on wall time but agree, to within the
tolerance, on how many times faster the parallel SpGEMM is than the
sequential one. Each gated key carries a direction — `higher` keys (speedups)
must not drop below baseline * (1 - tolerance); `lower` keys (time ratios
like auto-vs-best-static) must not rise above baseline * (1 + tolerance).

Usage:
    python3 tools/bench_gate.py --fresh build-profile [--baseline bench/baselines]
                                [--tolerance 0.10] [--list]

Exit status 0 when every gated key of every baseline file that has a fresh
counterpart is within tolerance; 1 otherwise. A baseline file with no fresh
counterpart is skipped with a note (the smoke CI run does not refresh every
ladder); a *gated key* missing from a fresh counterpart is a failure, since
that means the bench silently stopped reporting it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# file name -> {key: direction}. Directions: "higher" = bigger is better
# (speedup-style), "lower" = smaller is better (time-ratio-style).
GATED_KEYS = {
    "BENCH_spgemm.json": {
        "geomean_speedup": "higher",
        # Tracked-allocation count of the pass-through ablation over the
        # arena-backed run: the allocator-traffic reduction the op-arena
        # tier buys. A drop means scratch is leaking back onto the heap.
        "alloc_reduction_spgemm": "higher",
    },
    "BENCH_formats.json": {
        "geomean_bitblock_vs_hash_spgemm": "higher",
        "geomean_auto_vs_best_static": "lower",
    },
    "BENCH_dist.json": {
        "geomean_speedup_4dev": "higher",
        # Fraction of tile-buffer acquires served by the per-device free
        # lists across the SUMMA ladder (recycled accumulators/outputs).
        "pool_reuse_ratio": "higher",
    },
    "BENCH_incremental.json": {
        # Single-edge update latency of the semi-naive closure maintenance
        # vs a full recompute of the same post-batch graph (geomean over the
        # LUBM and pointer-analysis inputs). The acceptance floor is 10x;
        # a drop means the delta-sized step loop degraded toward rebuild.
        "geomean_speedup_batch1": "higher",
    },
}

# The CI smoke run writes lowercase names (bench_spgemm.json); map both
# spellings onto the same gate entry.
ALIASES = {name.lower(): name for name in GATED_KEYS}


def gate_name(path: Path) -> str | None:
    """Canonical GATED_KEYS entry for a file name, or None if ungated."""
    if path.name in GATED_KEYS:
        return path.name
    return ALIASES.get(path.name.lower())


def load(path: Path) -> dict:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def check_file(baseline_path: Path, fresh_path: Path, tolerance: float) -> list[str]:
    """Return a list of failure messages for one baseline/fresh pair."""
    name = gate_name(baseline_path)
    failures: list[str] = []
    baseline = load(baseline_path)
    fresh = load(fresh_path)
    for key, direction in GATED_KEYS[name].items():
        if key not in baseline:
            # Baseline predates the key; nothing to hold the fresh run to.
            print(f"  note: {baseline_path.name} has no '{key}' — skipped")
            continue
        if key not in fresh:
            failures.append(f"{fresh_path.name}: gated key '{key}' missing")
            continue
        base, cur = float(baseline[key]), float(fresh[key])
        if direction == "higher":
            bound = base * (1.0 - tolerance)
            ok = cur >= bound
            verdict = f">= {bound:.3f}"
        else:
            bound = base * (1.0 + tolerance)
            ok = cur <= bound
            verdict = f"<= {bound:.3f}"
        status = "ok" if ok else "FAIL"
        print(f"  {status}: {key} = {cur:.3f} (baseline {base:.3f}, need {verdict})")
        if not ok:
            failures.append(
                f"{fresh_path.name}: {key} = {cur:.3f} vs baseline {base:.3f} "
                f"(tolerance {tolerance:.0%}, direction {direction})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, type=Path,
                        help="directory holding freshly produced BENCH JSONs")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "bench" / "baselines",
                        help="directory of committed baselines "
                             "(default: bench/baselines)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drift per key (default 0.10)")
    parser.add_argument("--list", action="store_true",
                        help="print the gated keys and exit")
    args = parser.parse_args()

    if args.list:
        for fname, keys in GATED_KEYS.items():
            for key, direction in keys.items():
                print(f"{fname}: {key} ({direction} is better)")
        return 0

    if not args.baseline.is_dir():
        print(f"bench_gate: baseline directory {args.baseline} missing",
              file=sys.stderr)
        return 1

    baselines = sorted(p for p in args.baseline.iterdir()
                       if gate_name(p) is not None)
    if not baselines:
        print(f"bench_gate: no gated baselines in {args.baseline}",
              file=sys.stderr)
        return 1

    failures: list[str] = []
    compared = 0
    for baseline_path in baselines:
        canonical = gate_name(baseline_path)
        # Accept either spelling of the fresh counterpart.
        candidates = [args.fresh / canonical, args.fresh / canonical.lower()]
        fresh_path = next((c for c in candidates if c.is_file()), None)
        if fresh_path is None:
            print(f"skipped: {canonical} (no fresh counterpart in {args.fresh})")
            continue
        print(f"comparing {fresh_path.name} against {baseline_path}:")
        failures += check_file(baseline_path, fresh_path, args.tolerance)
        compared += 1

    if compared == 0:
        print("bench_gate: no fresh BENCH JSONs found to compare", file=sys.stderr)
        return 1
    if failures:
        print(f"\nbench_gate: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: all gated keys within {args.tolerance:.0%} "
          f"({compared} file(s) compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
