#!/usr/bin/env python3
"""Project lint gate for the spbla reproduction.

Enforces the correctness conventions that keep the specialised kernels
auditable (run as the `lint` ctest target; CI runs it on every push):

  raw-new-delete    No raw `new` / `delete` expressions. All device memory
                    goes through DeviceBuffer / containers so the
                    MemoryTracker accounting (the paper's footprint numbers)
                    cannot be bypassed. The C API's opaque FFI handles are
                    the one sanctioned exception (suppressed inline).
  std-thread        No `std::thread` outside util/thread_pool: every worker
                    must come from the pool the TSan preset race-checks.
  ops-file-state    No mutable file-scope state in src/ops/ — kernels are
                    re-entrant and run concurrently on the pool; hidden
                    globals are exactly how racy buffer reuse starts.
  nondeterminism    No rand()/srand()/argless time calls anywhere: every
                    experiment must be reproducible bit-for-bit from a seed
                    (util::Rng) and timed via util::Timer.
  bare-assert       No <cassert>/assert() in src/ — invariants use
                    SPBLA_ASSERT / SPBLA_CHECKED so they obey the
                    SPBLA_CHECKS level instead of vanishing under NDEBUG.
  raw-chrono        No direct `std::chrono` (or <chrono> include) in src/
                    outside util/timer.hpp and src/prof/ — timing goes
                    through util::Timer and the profiling layer so kernels
                    never grow ad-hoc clocks the SPBLA_PROFILE=off build
                    would still pay for.
  contracts-include Files using SPBLA_* contract macros must include
                    util/contracts.hpp (or core/validate.hpp, which
                    re-exports it).
  ops-validation    Every kernel translation unit in src/ops/ must wire
                    SPBLA_VALIDATE / SPBLA_CHECKED at its boundaries.
  format-leak       No concrete-format header (core/csr.hpp, core/coo.hpp,
                    core/dense.hpp, core/bitblocks.hpp) outside src/core,
                    src/storage, src/ops,
                    src/baseline and src/dist. Everything above the storage
                    engine operates on the format-polymorphic spbla::Matrix
                    through storage/dispatch.hpp, so the cost model keeps the
                    final say over representations. The same rule keeps the
                    concrete tile headers (dist/partition.hpp,
                    dist/device_group.hpp, dist/sharded_matrix.hpp,
                    dist/sharded_ops.hpp) private to src/dist/ — callers go
                    through the dist/dist.hpp surface or, better, let the
                    dispatcher route. Test oracles and kernel benchmarks that
                    deliberately exercise one concrete format suppress
                    inline.

A finding can be suppressed for one line with a trailing
`// lint:allow(<rule>)` comment; use sparingly and say why nearby.

Usage: tools/lint.py [--root DIR]    exits 0 iff no violations.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "include", "tests", "bench", "examples")
EXTENSIONS = {".hpp", ".cpp", ".h"}

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def strip_code(text: str) -> str:
    """Replace comments and string/char literals with spaces, preserving
    line structure so reported line numbers match the source."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class File:
    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.splitlines()
        self.code_lines = strip_code(self.raw).splitlines()
        # Suppressions live in comments, so collect them from the raw text.
        self.allows: dict[int, set[str]] = {}
        for idx, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if m:
                self.allows[idx] = {r.strip() for r in m.group(1).split(",")}


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.violations: list[tuple[str, int, str, str]] = []

    def report(self, f: File, line_no: int, rule: str, msg: str) -> None:
        if rule in f.allows.get(line_no, ()):  # inline suppression
            return
        self.violations.append((f.rel, line_no, rule, msg))

    # --- rules ---------------------------------------------------------

    def rule_raw_new_delete(self, f: File) -> None:
        new_re = re.compile(r"\bnew\b(?!\s*\()")  # `new (addr) T` is still new
        delete_re = re.compile(r"\bdelete\b")
        deleted_fn_re = re.compile(r"=\s*delete\b")
        for no, line in enumerate(f.code_lines, start=1):
            if re.search(r"\bnew\b", line):
                self.report(f, no, "raw-new-delete",
                            "raw `new` — use DeviceBuffer / standard containers")
            if delete_re.search(line) and not deleted_fn_re.search(
                    re.sub(r"=\s*delete\b", "", line) if False else line):
                if not re.fullmatch(r".*=\s*delete\s*;?.*", line):
                    self.report(f, no, "raw-new-delete",
                                "raw `delete` — use RAII ownership")
        _ = new_re  # placement-new nuance folded into the `new` check above

    def rule_std_thread(self, f: File) -> None:
        if f.rel.startswith("src/util/thread_pool"):
            return
        for no, line in enumerate(f.code_lines, start=1):
            if "std::thread" in line:
                self.report(f, no, "std-thread",
                            "std::thread outside util/thread_pool — use the "
                            "Context's pool (parallel_for / submit_many)")

    def rule_nondeterminism(self, f: File) -> None:
        patterns = [
            (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() — use util::Rng"),
            (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
             "wall-clock seeding — use util::Timer / explicit seeds"),
            (re.compile(r"\brandom_device\b"), "std::random_device — use util::Rng"),
        ]
        for no, line in enumerate(f.code_lines, start=1):
            for pat, msg in patterns:
                if pat.search(line):
                    self.report(f, no, "nondeterminism", msg)

    def rule_bare_assert(self, f: File) -> None:
        if not f.rel.startswith("src/"):
            return
        for no, line in enumerate(f.code_lines, start=1):
            if re.search(r"(?<!\w)assert\s*\(", line) and "static_assert" not in line:
                self.report(f, no, "bare-assert",
                            "bare assert() — use SPBLA_ASSERT (obeys SPBLA_CHECKS)")
        for no, line in enumerate(f.raw_lines, start=1):
            if re.search(r'#\s*include\s*<cassert>', line):
                self.report(f, no, "bare-assert",
                            "<cassert> include — use util/contracts.hpp")

    def rule_raw_chrono(self, f: File) -> None:
        if not f.rel.startswith("src/"):
            return
        if f.rel == "src/util/timer.hpp" or f.rel.startswith("src/prof/"):
            return
        for no, line in enumerate(f.code_lines, start=1):
            if "std::chrono" in line:
                self.report(f, no, "raw-chrono",
                            "direct std::chrono — use util::Timer or the "
                            "spbla::prof span/counter layer")
        for no, line in enumerate(f.raw_lines, start=1):
            if re.search(r"#\s*include\s*<chrono>", line):
                self.report(f, no, "raw-chrono",
                            "<chrono> include — use util/timer.hpp or "
                            "prof/prof.hpp")

    def rule_contracts_include(self, f: File) -> None:
        if f.rel.endswith("util/contracts.hpp"):
            return
        uses = any(re.search(r"\bSPBLA_(ASSERT|REQUIRE|CHECKED|VALIDATE)\b", l)
                   for l in f.code_lines)
        if not uses:
            return
        includes = "\n".join(f.raw_lines)
        if not re.search(r'#\s*include\s*"(util/contracts|core/validate)\.hpp"',
                         includes):
            self.report(f, 1, "contracts-include",
                        "uses SPBLA_* contract macros without including "
                        "util/contracts.hpp or core/validate.hpp")

    def rule_ops_validation(self, f: File) -> None:
        if not (f.rel.startswith("src/ops/") and f.rel.endswith(".cpp")):
            return
        text = "\n".join(f.code_lines)
        if not re.search(r"\bSPBLA_(VALIDATE|CHECKED)\b", text):
            self.report(f, 1, "ops-validation",
                        "kernel translation unit has no SPBLA_VALIDATE / "
                        "SPBLA_CHECKED wiring at its op boundaries")

    def rule_format_leak(self, f: File) -> None:
        allowed = ("src/core/", "src/storage/", "src/ops/", "src/baseline/",
                   "src/dist/")
        core_pat = re.compile(
            r'#\s*include\s*"core/(csr|coo|dense|bitblocks)\.hpp"')
        dist_pat = re.compile(
            r'#\s*include\s*"dist/'
            r'(partition|device_group|sharded_matrix|sharded_ops)\.hpp"')
        for no, line in enumerate(f.raw_lines, start=1):
            if not f.rel.startswith(allowed):
                m = core_pat.search(line)
                if m:
                    self.report(f, no, "format-leak",
                                f"concrete-format header core/{m.group(1)}.hpp "
                                "included outside the storage/kernel layers — "
                                "use storage/matrix.hpp + storage/dispatch.hpp")
            if not f.rel.startswith("src/dist/"):
                m = dist_pat.search(line)
                if m:
                    self.report(f, no, "format-leak",
                                f"concrete tile header dist/{m.group(1)}.hpp "
                                "included outside src/dist/ — use dist/dist.hpp "
                                "(or let the dispatcher route)")

    def rule_ops_file_state(self, f: File) -> None:
        if not f.rel.startswith("src/ops/"):
            return
        # Track whether we are at namespace (file) scope: every brace opened
        # by a namespace is transparent, any other brace (function, class,
        # struct, enum, lambda, initialiser) is opaque.
        scope: list[str] = []
        pending: str | None = None
        decl_re = re.compile(
            r"^\s*(?:static\s+|thread_local\s+)?"
            r"(?!using\b|typedef\b|struct\b|class\b|enum\b|template\b|friend\b|"
            r"namespace\b|extern\b|return\b|if\b|for\b|while\b|switch\b|case\b)"
            r"[A-Za-z_][\w:<>,\s\*&]*?\s+[A-Za-z_]\w*\s*(?:=[^=]|\{)")
        continuation = False  # inside a statement spanning multiple lines
        for no, line in enumerate(f.code_lines, start=1):
            stripped = line.strip()
            if stripped.startswith("#"):
                continue
            if re.search(r"\bnamespace\b[^;{]*$", stripped) or re.search(
                    r"\bnamespace\b[^;{]*\{", stripped):
                pending = "namespace"
            at_file_scope = all(s == "namespace" for s in scope)
            if (at_file_scope and not continuation and decl_re.match(line)
                    and not re.search(r"\b(const|constexpr|constinit)\b", line)
                    and not re.search(r"\([^)]*\)\s*(\{|;)\s*$", stripped)):
                self.report(f, no, "ops-file-state",
                            "mutable file-scope state in a kernel TU — kernels "
                            "must be re-entrant; move it into the function or "
                            "the Context")
            for ch in line:
                if ch == "{":
                    scope.append(pending if pending else "block")
                    pending = None
                elif ch == "}":
                    if scope:
                        scope.pop()
            if stripped.endswith(";"):
                pending = None
            if stripped:
                continuation = not stripped.endswith((";", "{", "}", ":"))

    # --- driver --------------------------------------------------------

    def run(self) -> int:
        files = []
        for d in SCAN_DIRS:
            base = self.root / d
            if not base.is_dir():
                continue
            for p in sorted(base.rglob("*")):
                if p.suffix in EXTENSIONS and p.is_file():
                    files.append(File(p, p.relative_to(self.root).as_posix()))
        for f in files:
            self.rule_raw_new_delete(f)
            self.rule_std_thread(f)
            self.rule_nondeterminism(f)
            self.rule_raw_chrono(f)
            self.rule_bare_assert(f)
            self.rule_contracts_include(f)
            self.rule_ops_validation(f)
            self.rule_format_leak(f)
            self.rule_ops_file_state(f)
        for rel, no, rule, msg in sorted(self.violations):
            print(f"{rel}:{no}: [{rule}] {msg}")
        print(f"lint: scanned {len(files)} files, "
              f"{len(self.violations)} violation(s)")
        return 1 if self.violations else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root to scan (default: repo containing "
                         "this script)")
    args = ap.parse_args()
    return Linter(args.root).run()


if __name__ == "__main__":
    sys.exit(main())
