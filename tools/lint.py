#!/usr/bin/env python3
"""Project lint gate for the spbla reproduction.

Enforces the correctness conventions that keep the specialised kernels
auditable (run as the `lint` ctest target; CI runs it on every push):

  raw-new-delete    No raw `new` / `delete` expressions. All device memory
                    goes through DeviceBuffer / containers so the
                    MemoryTracker accounting (the paper's footprint numbers)
                    cannot be bypassed. The C API's opaque FFI handles are
                    the one sanctioned exception (suppressed inline).
  std-thread        No `std::thread` outside util/thread_pool: every worker
                    must come from the pool the TSan preset race-checks.
  ops-file-state    No mutable file-scope state in src/ops/ — kernels are
                    re-entrant and run concurrently on the pool; hidden
                    globals are exactly how racy buffer reuse starts.
  nondeterminism    No rand()/srand()/argless time calls anywhere: every
                    experiment must be reproducible bit-for-bit from a seed
                    (util::Rng) and timed via util::Timer.
  bare-assert       No <cassert>/assert() in src/ — invariants use
                    SPBLA_ASSERT / SPBLA_CHECKED so they obey the
                    SPBLA_CHECKS level instead of vanishing under NDEBUG.
  raw-chrono        No direct `std::chrono` (or <chrono> include) in src/
                    outside util/timer.hpp and src/prof/ — timing goes
                    through util::Timer and the profiling layer so kernels
                    never grow ad-hoc clocks the SPBLA_PROFILE=off build
                    would still pay for.
  contracts-include Files using SPBLA_* contract macros must include
                    util/contracts.hpp (or core/validate.hpp, which
                    re-exports it).
  ops-validation    Every kernel translation unit in src/ops/ must wire
                    SPBLA_VALIDATE / SPBLA_CHECKED at its boundaries.
  format-leak       No concrete-format header (core/csr.hpp, core/coo.hpp,
                    core/dense.hpp, core/bitblocks.hpp) outside src/core,
                    src/storage, src/ops,
                    src/baseline and src/dist. Everything above the storage
                    engine operates on the format-polymorphic spbla::Matrix
                    through storage/dispatch.hpp, so the cost model keeps the
                    final say over representations. The same rule keeps the
                    concrete tile headers (dist/partition.hpp,
                    dist/device_group.hpp, dist/sharded_matrix.hpp,
                    dist/sharded_ops.hpp) private to src/dist/ — callers go
                    through the dist/dist.hpp surface or, better, let the
                    dispatcher route. Test oracles and kernel benchmarks that
                    deliberately exercise one concrete format suppress
                    inline.

Concurrency rules (token-based; the shapes Clang's -Wthread-safety pass
cannot see because they cross a lambda/scheduling boundary):

  parallel-capture  No lazy-materialising Matrix accessor — csr(), coo(),
                    dense(), bitblocks(), max_row_nnz() — inside a
                    parallel_for* / run_dynamic / submit* / group().run
                    argument list, unless the same object's accessor runs
                    earlier in the TU outside any parallel extent (a
                    prewarm) or the call site is annotated safe. First
                    materialisation is synchronised per slot since the
                    repr-cache latch landed, so a suppression here means
                    "the latch covers this"; the rule still exists because
                    an accessor in a hot parallel region may serialise every
                    worker on the handle's mutex — prewarming stays the
                    better default, and new call sites must say which they
                    chose.
  lock-order        Mutexes must be acquired in one consistent global order.
                    Edges come from observed LockGuard/UniqueLock nesting
                    plus declared SPBLA_ACQUIRED_BEFORE/AFTER annotations;
                    any cycle in the combined graph is reported (on the
                    first edge involved).
  guarded-mutable   Every `mutable` member in src/ must be std::atomic, a
                    synchronisation primitive, SPBLA_GUARDED_BY-annotated,
                    or explicitly allowlisted — `mutable` is exactly where
                    const-correctness stops implying thread-safety.
  atomic-rmw        No load-then-store read-modify-write on an atomic
                    (`x.store(x.load() + 1)`): the two halves are not one
                    atomic step; use fetch_add/fetch_or/exchange.
  hot-alloc         No raw std::vector construction (or resize/assign/
                    reserve on a TU-declared std::vector) inside a parallel
                    extent in src/ops/, src/dist/ or src/incr/ — per-row/
                    per-tile heap churn bypasses the MemoryTracker and serialises
                    workers on the allocator. Kernel scratch goes on the
                    op arena (backend::ArenaVector, Context::scratch_alloc)
                    or the context's BufferPool; deliberate cold-path
                    allocations suppress inline.

A finding can be suppressed for one line with a trailing
`// lint:allow(<rule>)` comment; use sparingly and say why nearby.
`--audit-allows` fails the run if a suppression sits on a line that no
longer triggers its rule, so stale allows cannot outlive their reason.

Usage: tools/lint.py [--root DIR] [--rules r1,r2] [--audit-allows]
       exits 0 iff no violations (and, with --audit-allows, no stale
       suppressions).

If DIR contains none of the usual top-level trees (src/, tests/, ...) it is
scanned recursively as-is — that is how the rule fixtures under
tools/lint_fixtures/ are driven by tools/test_lint.py.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "include", "tests", "bench", "examples")
EXTENSIONS = {".hpp", ".cpp", ".h"}

ALLOW_RE = re.compile(r"lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")


def strip_code(text: str) -> str:
    """Replace comments and string/char literals with spaces, preserving
    line structure so reported line numbers match the source."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def string_literals(text: str):
    """Yield (line_no, contents) for every double-quoted string literal,
    comments excluded — the inverse selection of strip_code, for rules that
    inspect what the strings *say* (e.g. metric-name-literal)."""
    out: list[tuple[int, str]] = []
    i, n = 0, len(text)
    line = 1
    state = "code"
    start_line = 0
    buf: list[str] = []
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            line += 1
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                start_line = line
                buf = []
            elif c == "'":
                state = "char"
        elif state == "line_comment":
            if c == "\n":
                state = "code"
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
        elif state == "string":
            if c == "\\":
                buf.append(text[i:i + 2])
                i += 2
                continue
            if c == '"':
                out.append((start_line, "".join(buf)))
                state = "code"
            else:
                buf.append(c)
        elif state == "char":
            if c == "\\":
                i += 2
                continue
            if c == "'":
                state = "code"
        i += 1
    return out


# --- tokenizer -----------------------------------------------------------

class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind  # id | num | op
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # debugging aid
        return f"{self.kind}:{self.text}@{self.line}"


TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"          # identifier / keyword
    r"|\d[\w.']*"            # numeric literal (incl. 0x..., digit separators)
    r"|->|::|\.\.\."         # multi-char operators the rules care about
    r"|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||\+\+|--|[-+*/%&|^!=]=?"
    r"|[{}()\[\];,.:?~<>#]"
)


def tokenize(code: str) -> list[Token]:
    """Token stream over comment/string-stripped code. Line numbers are
    1-based and match the original source (strip_code preserves lines)."""
    tokens: list[Token] = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(code):
        line += code.count("\n", pos, m.start())
        pos = m.start()
        text = m.group(0)
        if text[0].isalpha() or text[0] == "_":
            kind = "id"
        elif text[0].isdigit():
            kind = "num"
        else:
            kind = "op"
        tokens.append(Token(kind, text, line))
    return tokens


def match_paren(tokens: list[Token], open_idx: int) -> int:
    """Index of the `)` matching tokens[open_idx] == `(` (len(tokens) if
    unbalanced)."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


def object_chain(tokens: list[Token], dot_idx: int) -> str:
    """Reconstruct the object expression ending at the `.`/`->` token at
    dot_idx: walks back over identifier chains, `::` qualifiers and balanced
    call/index suffixes (`c_in->tile(i, j)` before `.csr()` → "c_in->tile(i,j)").
    Returns the whitespace-free spelling, or "" if no chain is found."""
    parts: list[str] = []
    i = dot_idx - 1
    expect_primary = True  # next thing walking back must be id or `)`/`]`
    while i >= 0:
        t = tokens[i]
        if expect_primary:
            if t.text in (")", "]"):
                closer, opener = t.text, "(" if t.text == ")" else "["
                depth = 0
                j = i
                while j >= 0:
                    if tokens[j].text == closer:
                        depth += 1
                    elif tokens[j].text == opener:
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                # A call/index suffix must follow a callee name; a bare
                # closing paren (cast, lambda call, ...) ends the chain.
                if j < 1 or tokens[j - 1].kind != "id":
                    break
                parts.append("".join(tok.text for tok in tokens[j:i + 1]))
                parts.append(tokens[j - 1].text)
                i = j - 2
                expect_primary = False
            elif t.kind == "id":
                parts.append(t.text)
                i -= 1
                expect_primary = False
            else:
                break
        else:
            if t.text in (".", "->", "::"):
                parts.append(t.text)
                i -= 1
                expect_primary = True
            else:
                break
    if expect_primary:  # dangling separator — drop it
        if parts:
            parts.pop()
    return "".join(reversed(parts))


class File:
    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.raw = path.read_text(encoding="utf-8")
        self.raw_lines = self.raw.splitlines()
        code = strip_code(self.raw)
        self.code_lines = code.splitlines()
        self.tokens = tokenize(code)
        # Suppressions live in comments, so collect them from the raw text.
        self.allows: dict[int, set[str]] = {}
        for idx, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if m:
                self.allows[idx] = {r.strip() for r in m.group(1).split(",")}


class Linter:
    def __init__(self, root: Path):
        self.root = root
        # Every finding, pre-suppression: (rel, line, rule, msg).
        self.raw_findings: list[tuple[str, int, str, str]] = []

    def report(self, f: File, line_no: int, rule: str, msg: str) -> None:
        self.raw_findings.append((f.rel, line_no, rule, msg))

    # --- per-file rules ------------------------------------------------

    def rule_raw_new_delete(self, f: File) -> None:
        delete_re = re.compile(r"\bdelete\b")
        for no, line in enumerate(f.code_lines, start=1):
            if re.search(r"\bnew\b", line):
                self.report(f, no, "raw-new-delete",
                            "raw `new` — use DeviceBuffer / standard containers")
            if delete_re.search(line):
                if not re.fullmatch(r".*=\s*delete\s*;?.*", line):
                    self.report(f, no, "raw-new-delete",
                                "raw `delete` — use RAII ownership")

    def rule_std_thread(self, f: File) -> None:
        if f.rel.startswith("src/util/thread_pool"):
            return
        for no, line in enumerate(f.code_lines, start=1):
            if "std::thread" in line:
                self.report(f, no, "std-thread",
                            "std::thread outside util/thread_pool — use the "
                            "Context's pool (parallel_for / submit_many)")

    def rule_nondeterminism(self, f: File) -> None:
        patterns = [
            (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand() — use util::Rng"),
            (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
             "wall-clock seeding — use util::Timer / explicit seeds"),
            (re.compile(r"\brandom_device\b"), "std::random_device — use util::Rng"),
        ]
        for no, line in enumerate(f.code_lines, start=1):
            for pat, msg in patterns:
                if pat.search(line):
                    self.report(f, no, "nondeterminism", msg)

    def rule_bare_assert(self, f: File) -> None:
        if not f.rel.startswith("src/"):
            return
        for no, line in enumerate(f.code_lines, start=1):
            if re.search(r"(?<!\w)assert\s*\(", line) and "static_assert" not in line:
                self.report(f, no, "bare-assert",
                            "bare assert() — use SPBLA_ASSERT (obeys SPBLA_CHECKS)")
        for no, line in enumerate(f.raw_lines, start=1):
            if re.search(r'#\s*include\s*<cassert>', line):
                self.report(f, no, "bare-assert",
                            "<cassert> include — use util/contracts.hpp")

    def rule_raw_chrono(self, f: File) -> None:
        if not f.rel.startswith("src/"):
            return
        if f.rel == "src/util/timer.hpp" or f.rel.startswith("src/prof/"):
            return
        for no, line in enumerate(f.code_lines, start=1):
            if "std::chrono" in line:
                self.report(f, no, "raw-chrono",
                            "direct std::chrono — use util::Timer or the "
                            "spbla::prof span/counter layer")
        for no, line in enumerate(f.raw_lines, start=1):
            if re.search(r"#\s*include\s*<chrono>", line):
                self.report(f, no, "raw-chrono",
                            "<chrono> include — use util/timer.hpp or "
                            "prof/prof.hpp")

    def rule_contracts_include(self, f: File) -> None:
        if f.rel.endswith("util/contracts.hpp"):
            return
        uses = any(re.search(r"\bSPBLA_(ASSERT|REQUIRE|CHECKED|VALIDATE)\b", l)
                   for l in f.code_lines)
        if not uses:
            return
        includes = "\n".join(f.raw_lines)
        if not re.search(r'#\s*include\s*"(util/contracts|core/validate)\.hpp"',
                         includes):
            self.report(f, 1, "contracts-include",
                        "uses SPBLA_* contract macros without including "
                        "util/contracts.hpp or core/validate.hpp")

    def rule_ops_validation(self, f: File) -> None:
        if not (f.rel.startswith("src/ops/") and f.rel.endswith(".cpp")):
            return
        text = "\n".join(f.code_lines)
        if not re.search(r"\bSPBLA_(VALIDATE|CHECKED)\b", text):
            self.report(f, 1, "ops-validation",
                        "kernel translation unit has no SPBLA_VALIDATE / "
                        "SPBLA_CHECKED wiring at its op boundaries")

    def rule_format_leak(self, f: File) -> None:
        allowed = ("src/core/", "src/storage/", "src/ops/", "src/baseline/",
                   "src/dist/")
        core_pat = re.compile(
            r'#\s*include\s*"core/(csr|coo|dense|bitblocks)\.hpp"')
        dist_pat = re.compile(
            r'#\s*include\s*"dist/'
            r'(partition|device_group|sharded_matrix|sharded_ops)\.hpp"')
        for no, line in enumerate(f.raw_lines, start=1):
            if not f.rel.startswith(allowed):
                m = core_pat.search(line)
                if m:
                    self.report(f, no, "format-leak",
                                f"concrete-format header core/{m.group(1)}.hpp "
                                "included outside the storage/kernel layers — "
                                "use storage/matrix.hpp + storage/dispatch.hpp")
            if not f.rel.startswith("src/dist/"):
                m = dist_pat.search(line)
                if m:
                    self.report(f, no, "format-leak",
                                f"concrete tile header dist/{m.group(1)}.hpp "
                                "included outside src/dist/ — use dist/dist.hpp "
                                "(or let the dispatcher route)")

    # Dotted instrument-name prefixes owned by telemetry/metric_names.hpp.
    # The schema tag "spbla.metrics.v1" deliberately does not match: it names
    # the export format, not an instrument.
    METRIC_LITERAL_RE = re.compile(
        r"spbla\.(dispatch|op|mem|storage|pool|dist|prof|arena|incr)"
        r"\.[a-z0-9_.]+")

    def rule_metric_name_literal(self, f: File) -> None:
        if not f.rel.startswith("src/"):
            return
        if f.rel == "src/telemetry/metric_names.hpp":
            return
        # strip_code() blanks string literals, so walk the raw text with the
        # same scanner states and collect literal contents per line.
        for no, literal in string_literals(f.raw):
            m = self.METRIC_LITERAL_RE.search(literal)
            if m:
                self.report(f, no, "metric-name-literal",
                            f'metric name "{m.group(0)}" spelled as a string '
                            "literal — instrument names live only in "
                            "telemetry/metric_names.hpp (add an enum there "
                            "and call telemetry::name())")

    def rule_ops_file_state(self, f: File) -> None:
        if not f.rel.startswith("src/ops/"):
            return
        # Track whether we are at namespace (file) scope: every brace opened
        # by a namespace is transparent, any other brace (function, class,
        # struct, enum, lambda, initialiser) is opaque.
        scope: list[str] = []
        pending: str | None = None
        decl_re = re.compile(
            r"^\s*(?:static\s+|thread_local\s+)?"
            r"(?!using\b|typedef\b|struct\b|class\b|enum\b|template\b|friend\b|"
            r"namespace\b|extern\b|return\b|if\b|for\b|while\b|switch\b|case\b)"
            r"[A-Za-z_][\w:<>,\s\*&]*?\s+[A-Za-z_]\w*\s*(?:=[^=]|\{)")
        continuation = False  # inside a statement spanning multiple lines
        for no, line in enumerate(f.code_lines, start=1):
            stripped = line.strip()
            if stripped.startswith("#"):
                continue
            if re.search(r"\bnamespace\b[^;{]*$", stripped) or re.search(
                    r"\bnamespace\b[^;{]*\{", stripped):
                pending = "namespace"
            at_file_scope = all(s == "namespace" for s in scope)
            if (at_file_scope and not continuation and decl_re.match(line)
                    and not re.search(r"\b(const|constexpr|constinit)\b", line)
                    and not re.search(r"\([^)]*\)\s*(\{|;)\s*$", stripped)):
                self.report(f, no, "ops-file-state",
                            "mutable file-scope state in a kernel TU — kernels "
                            "must be re-entrant; move it into the function or "
                            "the Context")
            for ch in line:
                if ch == "{":
                    scope.append(pending if pending else "block")
                    pending = None
                elif ch == "}":
                    if scope:
                        scope.pop()
            if stripped.endswith(";"):
                pending = None
            if stripped:
                continuation = not stripped.endswith((";", "{", "}", ":"))

    # --- concurrency rules (token-based) -------------------------------

    #: Matrix accessors that may materialise a representation (take the
    #: handle's repr mutex on a cache miss).
    LAZY_ACCESSORS = frozenset({"csr", "coo", "dense", "bitblocks", "max_row_nnz"})

    #: Call spellings whose argument list is a parallel extent: the lambdas
    #: inside run concurrently on pool workers.
    PARALLEL_INTRODUCERS = frozenset(
        {"parallel_for", "parallel_for_chunks", "run_dynamic",
         "submit", "submit_many"})

    def _parallel_extents(self, f: File) -> list[tuple[int, int]]:
        """Token index ranges [open_paren, close_paren] of every parallel
        launch's argument list."""
        toks = f.tokens
        extents: list[tuple[int, int]] = []
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            open_idx = None
            if (t.text in self.PARALLEL_INTRODUCERS
                    and i + 1 < len(toks) and toks[i + 1].text == "("):
                open_idx = i + 1
            elif (t.text == "run" and i + 1 < len(toks)
                    and toks[i + 1].text == "("
                    and i >= 1 and toks[i - 1].text in (".", "->")):
                # DeviceGroup::run — match `group.run(` / `group().run(`.
                chain = object_chain(toks, i - 1)
                if re.search(r"\bgroup(\(\))?$", chain):
                    open_idx = i + 1
            if open_idx is not None:
                extents.append((open_idx, match_paren(toks, open_idx)))
        return extents

    def rule_parallel_capture(self, f: File) -> None:
        toks = f.tokens
        extents = self._parallel_extents(f)
        if not extents:
            return

        def extent_of(idx: int) -> tuple[int, int] | None:
            for lo, hi in extents:
                if lo < idx < hi:
                    return (lo, hi)
            return None

        # Every lazy-accessor call: (token index, object spelling, accessor).
        calls: list[tuple[int, str, str]] = []
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.text in self.LAZY_ACCESSORS
                    and i + 1 < len(toks) and toks[i + 1].text == "("
                    and i >= 1 and toks[i - 1].text in (".", "->")):
                calls.append((i, object_chain(toks, i - 1), t.text))

        # A TU "prewarm": the same object's accessor called outside any
        # parallel extent, earlier in the file.
        serial_calls = [(i, obj, acc) for i, obj, acc in calls
                        if extent_of(i) is None]
        for i, obj, acc in calls:
            if extent_of(i) is None:
                continue
            prewarmed = any(j < i and sobj == obj and sacc == acc
                            for j, sobj, sacc in serial_calls)
            if prewarmed:
                continue
            self.report(
                f, toks[i].line, "parallel-capture",
                f"lazy Matrix accessor `{obj}.{acc}()` inside a parallel "
                "extent — first materialisation takes the handle's repr "
                "mutex under every worker; prewarm it before the launch or "
                "annotate the call site safe")

    def rule_hot_alloc(self, f: File) -> None:
        if not (f.rel.startswith("src/ops/") or f.rel.startswith("src/dist/")
                or f.rel.startswith("src/incr/")):
            return
        toks = f.tokens
        extents = self._parallel_extents(f)
        if not extents:
            return

        def in_extent(idx: int) -> bool:
            return any(lo < idx < hi for lo, hi in extents)

        def skip_template_args(j: int) -> int:
            """Token index just past a `<...>` list starting at j (or j)."""
            if j >= len(toks) or toks[j].text != "<":
                return j
            depth = 0
            while j < len(toks):
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        return j + 1
                j += 1
            return j

        # Pass 1: every `std::vector` spelling. Construction inside a
        # parallel extent is per-row/per-tile heap churn; declarations
        # anywhere in the TU seed the name set for pass 2 (a vector built
        # serially but regrown inside the launch allocates just the same).
        vector_names: set[str] = set()
        construction_sites: list[tuple[int, int]] = []  # (tok idx, line)
        n = len(toks)
        for i, t in enumerate(toks):
            if not (t.kind == "id" and t.text == "vector" and i >= 2
                    and toks[i - 1].text == "::" and toks[i - 2].text == "std"):
                continue
            j = skip_template_args(i + 1)
            if j < n and toks[j].kind == "id":
                vector_names.add(toks[j].text)
            if in_extent(i):
                # A reference/pointer binding does not allocate; an actual
                # declaration or temporary construction does.
                if j < n and toks[j].text not in ("&", "*", "&&"):
                    construction_sites.append((i, t.line))
        for _, line in construction_sites:
            self.report(
                f, line, "hot-alloc",
                "raw std::vector constructed inside a parallel extent — "
                "per-row heap churn invisible to MemoryTracker; use "
                "backend::ArenaVector / Context::scratch_alloc (op-scoped "
                "scratch) or the context BufferPool (buffers that escape)")

        # Pass 2: growth calls on a TU-declared std::vector inside an
        # extent. Direct `name.resize(...)` shapes only — an element access
        # like `cache[i].assign(...)` writes an op output, not scratch.
        for i, t in enumerate(toks):
            if (t.kind == "id" and t.text in ("resize", "assign", "reserve")
                    and i + 1 < n and toks[i + 1].text == "("
                    and i >= 2 and toks[i - 1].text in (".", "->")
                    and toks[i - 2].kind == "id"
                    and toks[i - 2].text in vector_names
                    and in_extent(i)):
                self.report(
                    f, t.line, "hot-alloc",
                    f"`{toks[i - 2].text}.{t.text}()` grows a raw "
                    "std::vector inside a parallel extent — move the "
                    "scratch onto the op arena (backend::ArenaVector) or "
                    "acquire it from the context BufferPool")

    def rule_guarded_mutable(self, f: File) -> None:
        if not f.rel.startswith("src/"):
            return
        safe_re = re.compile(
            r"std\s*::\s*atomic|\batomic\s*<|SPBLA_GUARDED_BY|\bMutex\b|"
            r"std\s*::\s*mutex|\bonce_flag\b|\bcondition_variable\b|\bCondVar\b")
        no = 0
        lines = f.code_lines
        n = len(lines)
        idx = 0
        while idx < n:
            line = lines[idx]
            no = idx + 1
            m = re.match(r"\s*mutable\b", line)
            if not m:
                idx += 1
                continue
            # Merge the declaration until its terminating `;`.
            decl = line
            j = idx
            while ";" not in lines[j] and j + 1 < n:
                j += 1
                decl += " " + lines[j]
            if not safe_re.search(decl):
                self.report(
                    f, no, "guarded-mutable",
                    "mutable member is neither std::atomic nor "
                    "SPBLA_GUARDED_BY-annotated — `mutable` breaks the "
                    "const-means-shareable contract; guard it or allowlist "
                    "with a rationale")
            idx = j + 1

    def rule_atomic_rmw(self, f: File) -> None:
        toks = f.tokens
        for i, t in enumerate(toks):
            if not (t.kind == "id" and t.text == "store"
                    and i + 1 < len(toks) and toks[i + 1].text == "("
                    and i >= 1 and toks[i - 1].text in (".", "->")):
                continue
            obj = object_chain(toks, i - 1)
            if not obj:
                continue
            close = match_paren(toks, i + 1)
            # Look for `<same object> . load (` inside the store's arguments.
            k = i + 2
            while k < close:
                if (toks[k].kind == "id" and toks[k].text == "load"
                        and k + 1 < len(toks) and toks[k + 1].text == "("
                        and toks[k - 1].text in (".", "->")
                        and object_chain(toks, k - 1) == obj):
                    self.report(
                        f, toks[k].line, "atomic-rmw",
                        f"`{obj}.store({obj}.load() ...)` is not one atomic "
                        "step — concurrent writers lose updates; use "
                        "fetch_add/fetch_sub/fetch_or/exchange")
                    break
                k += 1

    # --- lock-order (cross-file) ----------------------------------------

    GUARD_TYPES = frozenset({"LockGuard", "UniqueLock", "lock_guard",
                             "unique_lock", "scoped_lock"})

    def _collect_lock_edges(
            self, f: File,
            edges: dict[tuple[str, str], tuple[str, int]]) -> None:
        toks = f.tokens
        # Declared edges: `SPBLA_ACQUIRED_BEFORE(a, b)` / `_AFTER(...)`
        # attached to a member named by the preceding identifier.
        for i, t in enumerate(toks):
            if t.kind != "id" or t.text not in ("SPBLA_ACQUIRED_BEFORE",
                                                "SPBLA_ACQUIRED_AFTER"):
                continue
            if i < 1 or toks[i - 1].kind != "id":
                continue
            member = toks[i - 1].text
            if member == "define":  # the macro's own #define line
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "(":
                continue
            close = match_paren(toks, i + 1)
            args, cur = [], []
            for k in range(i + 2, close):
                if toks[k].text == ",":
                    args.append("".join(cur))
                    cur = []
                else:
                    cur.append(toks[k].text)
            if cur:
                args.append("".join(cur))
            for arg in args:
                edge = ((member, arg) if t.text == "SPBLA_ACQUIRED_BEFORE"
                        else (arg, member))
                edges.setdefault(edge, (f.rel, t.line))

        # Observed nesting: a guard constructed while another is live in an
        # enclosing (or the same) scope orders its mutex after the live one.
        depth = 0
        live: list[tuple[str, int]] = []  # (mutex expr, depth at declaration)
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth <= 0:
                    depth = 0
                    live.clear()
                else:
                    live = [g for g in live if g[1] <= depth]
            elif (t.kind == "id" and t.text in self.GUARD_TYPES
                    and i + 1 < n):
                # Skip a template argument list: lock_guard<std::mutex> lk(m);
                j = i + 1
                if toks[j].text == "<":
                    tdepth = 0
                    while j < n:
                        if toks[j].text == "<":
                            tdepth += 1
                        elif toks[j].text == ">":
                            tdepth -= 1
                            if tdepth == 0:
                                j += 1
                                break
                        j += 1
                # Expect: <name> ( args ) | <name> { args }  (or no name for
                # temporaries, which we ignore — they release immediately).
                if j < n and toks[j].kind == "id":
                    j += 1
                    if j < n and toks[j].text in ("(", "{"):
                        opener = toks[j].text
                        closer = ")" if opener == "(" else "}"
                        d2, k = 0, j
                        args_toks: list[Token] = []
                        while k < n:
                            if toks[k].text == opener:
                                d2 += 1
                            elif toks[k].text == closer:
                                d2 -= 1
                                if d2 == 0:
                                    break
                            if k > j:
                                args_toks.append(toks[k])
                            k += 1
                        mutexes = []
                        cur = []
                        for at in args_toks:
                            if at.text == ",":
                                mutexes.append("".join(x.text for x in cur))
                                cur = []
                            else:
                                cur.append(at)
                        if cur:
                            mutexes.append("".join(x.text for x in cur))
                        for mx in mutexes:
                            if not mx:
                                continue
                            for held, _ in live:
                                if held != mx:
                                    edges.setdefault((held, mx),
                                                     (f.rel, t.line))
                        for mx in mutexes:
                            if mx:
                                live.append((mx, depth))
                        i = k
            i += 1

    def rule_lock_order(self, files: list[File]) -> None:
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        for f in files:
            self._collect_lock_edges(f, edges)
        graph: dict[str, set[str]] = {}
        for (a, b) in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        # Cycle detection via iterative DFS colouring.
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {v: WHITE for v in graph}
        for start in sorted(graph):
            if colour[start] != WHITE:
                continue
            stack: list[tuple[str, list[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                if node == "__pop__":
                    continue
                if colour[node] == BLACK:
                    continue
                colour[node] = GREY
                advanced = False
                for nxt in sorted(graph[node]):
                    if colour.get(nxt) == GREY and nxt in path:
                        cycle = path[path.index(nxt):] + [nxt]
                        cedges = list(zip(cycle, cycle[1:]))
                        rel, line = min(edges[e] for e in cedges if e in edges)
                        order = " -> ".join(cycle)
                        # Anchor the finding on the first edge of the cycle
                        # so a suppression sits next to the deviant lock.
                        self.raw_findings.append(
                            (rel, line, "lock-order",
                             f"inconsistent mutex acquisition order: {order} "
                             "— pick one global order (declare it with "
                             "SPBLA_ACQUIRED_BEFORE/AFTER)"))
                        for v in cycle:
                            colour[v] = BLACK
                    elif colour.get(nxt) == WHITE:
                        stack.append((node, path))  # revisit to blacken
                        stack.append((nxt, path + [nxt]))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK

    # --- driver --------------------------------------------------------

    PER_FILE_RULES = {
        "raw-new-delete": "rule_raw_new_delete",
        "std-thread": "rule_std_thread",
        "nondeterminism": "rule_nondeterminism",
        "raw-chrono": "rule_raw_chrono",
        "bare-assert": "rule_bare_assert",
        "contracts-include": "rule_contracts_include",
        "ops-validation": "rule_ops_validation",
        "format-leak": "rule_format_leak",
        "metric-name-literal": "rule_metric_name_literal",
        "ops-file-state": "rule_ops_file_state",
        "parallel-capture": "rule_parallel_capture",
        "hot-alloc": "rule_hot_alloc",
        "guarded-mutable": "rule_guarded_mutable",
        "atomic-rmw": "rule_atomic_rmw",
    }
    CROSS_FILE_RULES = {"lock-order": "rule_lock_order"}
    ALL_RULES = tuple(PER_FILE_RULES) + tuple(CROSS_FILE_RULES)

    def collect_files(self) -> list[File]:
        files = []
        bases = [self.root / d for d in SCAN_DIRS if (self.root / d).is_dir()]
        if not bases:
            bases = [self.root]  # fixture mode: scan the directory as given
        for base in bases:
            for p in sorted(base.rglob("*")):
                if p.suffix in EXTENSIONS and p.is_file():
                    files.append(File(p, p.relative_to(self.root).as_posix()))
        return files

    def run(self, rules: list[str], audit_allows: bool) -> int:
        files = self.collect_files()
        for f in files:
            for rule in rules:
                method = self.PER_FILE_RULES.get(rule)
                if method:
                    getattr(self, method)(f)
        for rule in rules:
            method = self.CROSS_FILE_RULES.get(rule)
            if method:
                getattr(self, method)(files)

        allows = {(f.rel, no, rule)
                  for f in files
                  for no, names in f.allows.items()
                  for rule in names}
        raw_keys = {(rel, no, rule) for rel, no, rule, _ in self.raw_findings}
        violations = [(rel, no, rule, msg)
                      for rel, no, rule, msg in self.raw_findings
                      if (rel, no, rule) not in allows]
        for rel, no, rule, msg in sorted(violations):
            print(f"{rel}:{no}: [{rule}] {msg}")

        stale: list[tuple[str, int, str, str]] = []
        if audit_allows:
            for rel, no, rule in sorted(allows):
                if rule not in self.ALL_RULES:
                    stale.append((rel, no, rule,
                                  f"unknown rule `{rule}` in lint:allow"))
                elif rule in rules and (rel, no, rule) not in raw_keys:
                    stale.append((rel, no, rule,
                                  "stale suppression: line no longer "
                                  f"triggers `{rule}` — delete the allow"))
            for rel, no, rule, msg in stale:
                print(f"{rel}:{no}: [audit-allows] {msg}")

        print(f"lint: scanned {len(files)} files, "
              f"{len(violations)} violation(s)"
              + (f", {len(stale)} stale allow(s)" if audit_allows else ""))
        return 1 if violations or stale else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root to scan (default: repo containing "
                         "this script)")
    ap.add_argument("--rules", type=str, default=",".join(Linter.ALL_RULES),
                    help="comma-separated rule subset to run (default: all)")
    ap.add_argument("--audit-allows", action="store_true",
                    help="additionally fail on lint:allow comments whose "
                         "line no longer triggers the named rule")
    args = ap.parse_args()
    rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in rules if r not in Linter.ALL_RULES]
    if unknown:
        print(f"lint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    return Linter(args.root).run(rules, args.audit_allows)


if __name__ == "__main__":
    sys.exit(main())
